package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// evRec collects one shard's message-event stream.
type evRec struct{ evs []MsgEvent }

func (r *evRec) MessageEvent(ev MsgEvent) { r.evs = append(r.evs, ev) }

// richBody is a workload exercising every transport path: eager and
// rendezvous point-to-point (intra- and cross-partition once the world is
// split), wildcards, probes, synchronous sends, truncation on both
// protocols, and the collectives. Unexpected errors panic (failing the run);
// expected errors are asserted in place.
func richBody(p *sim.Proc, ep *Endpoint) {
	comm := ep.World().Comm()
	n, r := ep.Size(), ep.Rank()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	mustReq := func(req *Request, err error) *Request {
		must(err)
		return req
	}

	// Round 1: eager ring with concrete coordinates.
	small := make([]byte, 256)
	for i := range small {
		small[i] = byte(r)
	}
	in1 := make([]byte, 256)
	sreq := mustReq(ep.Isend(p, small, (r+1)%n, 1, Bytes, comm))
	rreq := mustReq(ep.Irecv(p, in1, (r-1+n)%n, 1, Bytes, comm))
	must(Waitall(p, sreq, rreq))
	if in1[0] != byte((r-1+n)%n) {
		panic(fmt.Sprintf("rank %d: ring payload corrupted: got %d", r, in1[0]))
	}

	// Round 2: wildcard receives (AnySource on even ranks, AnyTag on odd).
	in2 := make([]byte, 256)
	src, tag := (r-2+2*n)%n, 2
	if r%2 == 0 {
		src = AnySource
	} else {
		tag = AnyTag
	}
	rreq = mustReq(ep.Irecv(p, in2, src, tag, Bytes, comm))
	sreq = mustReq(ep.Isend(p, small, (r+2)%n, 2, Bytes, comm))
	must(Waitall(p, sreq, rreq))

	// Round 3: rendezvous ring (above the eager threshold).
	big := make([]byte, EagerThreshold+4096)
	for i := range big {
		big[i] = byte(r + 1)
	}
	inBig := make([]byte, len(big))
	sreq = mustReq(ep.Isend(p, big, (r+1)%n, 3, Bytes, comm))
	rreq = mustReq(ep.Irecv(p, inBig, (r-1+n)%n, 3, Bytes, comm))
	must(Waitall(p, sreq, rreq))
	if inBig[len(inBig)-1] != byte((r-1+n)%n+1) {
		panic(fmt.Sprintf("rank %d: rndv payload corrupted", r))
	}

	// Round 4: truncation, eager (rank 0 -> last) and rendezvous (rank 1 ->
	// last). The sender completes cleanly; the receiver sees ErrTruncate.
	last := n - 1
	switch r {
	case 0:
		must(ep.Send(p, small[:100], last, 4, Bytes, comm))
	case 1:
		must(ep.Send(p, big, last, 5, Bytes, comm))
	case last:
		tiny := make([]byte, 50)
		if _, err := ep.Recv(p, tiny, 0, 4, Bytes, comm); !errors.Is(err, ErrTruncate) {
			panic(fmt.Sprintf("eager truncation: got %v", err))
		}
		if _, err := ep.Recv(p, tiny, 1, 5, Bytes, comm); !errors.Is(err, ErrTruncate) {
			panic(fmt.Sprintf("rndv truncation: got %v", err))
		}
	}

	// Round 5: synchronous send plus a probed receive.
	if r == 2%n {
		must(ep.Ssend(p, small[:64], last, 6, comm))
	}
	if r == last {
		st, err := ep.Probe(p, AnySource, 6, comm)
		must(err)
		buf := make([]byte, st.Count)
		if _, err := ep.Recv(p, buf, st.Source, 6, Bytes, comm); err != nil {
			panic(err)
		}
	}

	// Round 6: collectives.
	must(ep.Barrier(p, comm))
	bc := make([]byte, 1024)
	if r == 0 {
		for i := range bc {
			bc[i] = 7
		}
	}
	must(ep.Bcast(p, bc, 0, comm))
	if bc[100] != 7 {
		panic(fmt.Sprintf("rank %d: bcast payload corrupted", r))
	}
	sum, err := ep.AllreduceSum(p, float64(r), comm)
	must(err)
	if want := float64(n*(n-1)) / 2; sum != want {
		panic(fmt.Sprintf("rank %d: allreduce got %v want %v", r, sum, want))
	}
	out := make([]byte, 64*n)
	must(ep.Gather(p, small[:64], out, last, comm))
	must(ep.Barrier(p, comm))
}

// runSerial executes body on the legacy serial engine and returns the event
// stream and end time.
func runSerial(t *testing.T, sys cluster.System, n int, body func(*sim.Proc, *Endpoint)) ([]MsgEvent, sim.Time) {
	t.Helper()
	eng := sim.NewEngine()
	w := NewWorld(cluster.New(eng, sys, n))
	rec := &evRec{}
	w.SetMsgObserver(rec)
	w.LaunchRanks("rank", body)
	if err := eng.Run(); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	return rec.evs, eng.Now()
}

// runPart executes body on a partitioned world and returns per-shard event
// streams and the end time.
func runPart(t *testing.T, sys cluster.System, n, parts, workers int, body func(*sim.Proc, *Endpoint)) ([][]MsgEvent, sim.Time) {
	t.Helper()
	pe := sim.NewPartitionedEngineMatrix(cluster.LookaheadMatrix(sys, n, parts))
	pw := NewPartWorld(pe, sys, n)
	recs := make([]*evRec, parts)
	pw.SetMsgObserver(func(shard int) MsgObserver {
		recs[shard] = &evRec{}
		return recs[shard]
	})
	pw.LaunchRanks("rank", body)
	if err := pw.Run(workers); err != nil {
		t.Fatalf("partitioned run (parts=%d workers=%d): %v", parts, workers, err)
	}
	streams := make([][]MsgEvent, parts)
	for i, r := range recs {
		streams[i] = r.evs
	}
	return streams, pe.Now()
}

func testSystems(n int) map[string]cluster.System {
	cichlid := cluster.Cichlid()
	cichlid.MaxNodes = n
	ricc := cluster.RICC()
	if ricc.MaxNodes < n {
		ricc.MaxNodes = n
	}
	return map[string]cluster.System{"cichlid": cichlid, "ricc": ricc}
}

// TestPartitionK1BitIdentical: a 1-partition world must produce the exact
// serial event stream and end time — the partitioned machinery engages only
// when messages actually cross shards.
func TestPartitionK1BitIdentical(t *testing.T) {
	const n = 8
	for name, sys := range testSystems(n) {
		t.Run(name, func(t *testing.T) {
			sev, send := runSerial(t, sys, n, richBody)
			pev, pend := runPart(t, sys, n, 1, 1, richBody)
			if send != pend {
				t.Fatalf("end time: serial %v, 1-partition %v", send, pend)
			}
			if !reflect.DeepEqual(sev, pev[0]) {
				t.Fatalf("event streams diverge: serial %d events, partitioned %d", len(sev), len(pev[0]))
			}
		})
	}
}

// TestPartitionWorkersEquivalent: the oracle gate — a 4-partition world run
// on 4 host cores must be byte-identical (per-shard event streams and end
// time) to the same partitioned world run serially, on both preset systems.
func TestPartitionWorkersEquivalent(t *testing.T) {
	const n, parts = 8, 4
	for name, sys := range testSystems(n) {
		t.Run(name, func(t *testing.T) {
			sev, send := runPart(t, sys, n, parts, 1, richBody)
			pev, pend := runPart(t, sys, n, parts, parts, richBody)
			if send != pend {
				t.Fatalf("end time: workers=1 %v, workers=%d %v", send, parts, pend)
			}
			for i := range sev {
				if !reflect.DeepEqual(sev[i], pev[i]) {
					t.Fatalf("shard %d event streams diverge: %d vs %d events", i, len(sev[i]), len(pev[i]))
				}
			}
		})
	}
}

// TestPartitionMatchWorkloadEquivalent mirrors the benchmark workload shape
// (dense exchange with wildcards) at a size where every shard boundary is
// crossed every round.
func TestPartitionMatchWorkloadEquivalent(t *testing.T) {
	const n, parts, outstanding, rounds = 16, 4, 6, 3
	dense := func(p *sim.Proc, ep *Endpoint) {
		comm := ep.World().Comm()
		nn, r := ep.Size(), ep.Rank()
		bufs := make([][]byte, outstanding)
		for j := range bufs {
			bufs[j] = make([]byte, 256)
		}
		payload := make([]byte, 256)
		for round := 0; round < rounds; round++ {
			var reqs []*Request
			for j := 0; j < outstanding; j++ {
				src, tag := ((r-1-j)%nn+nn)%nn, j
				if j*100 < outstanding*50 {
					if j%2 == 0 {
						src = AnySource
					} else {
						tag = AnyTag
					}
				}
				req, err := ep.Irecv(p, bufs[j], src, tag, Bytes, comm)
				if err != nil {
					panic(err)
				}
				reqs = append(reqs, req)
			}
			for j := 0; j < outstanding; j++ {
				req, err := ep.Isend(p, payload, (r+1+j)%nn, j, Bytes, comm)
				if err != nil {
					panic(err)
				}
				reqs = append(reqs, req)
			}
			if err := Waitall(p, reqs...); err != nil {
				panic(err)
			}
			if err := ep.Barrier(p, comm); err != nil {
				panic(err)
			}
		}
	}
	sys := cluster.RICC()
	sev, send := runPart(t, sys, n, parts, 1, dense)
	pev, pend := runPart(t, sys, n, parts, parts, dense)
	if send != pend {
		t.Fatalf("end time: workers=1 %v, workers=%d %v", send, parts, pend)
	}
	for i := range sev {
		if !reflect.DeepEqual(sev[i], pev[i]) {
			t.Fatalf("shard %d event streams diverge", i)
		}
	}
}

// TestPartitionPropertyRandomShards: randomized shard counts, 1 through 8,
// drawn from a fixed-seed generator so failures replay. For every sampled
// (system, ranks, parts): a single-partition world must match the serial
// engine bit-for-bit, and a parts-worker run must match a 1-worker run of
// the same split — identical per-shard streams (hence identical merged
// streams) and identical end times.
func TestPartitionPropertyRandomShards(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for name, mk := range map[string]func() cluster.System{
		"cichlid": cluster.Cichlid, "ricc": cluster.RICC,
	} {
		for trial := 0; trial < 4; trial++ {
			parts := 1 + rng.Intn(8)
			n := parts + 2 + rng.Intn(10)
			t.Run(fmt.Sprintf("%s/n%d/k%d", name, n, parts), func(t *testing.T) {
				sys := mk()
				if sys.MaxNodes < n {
					sys.MaxNodes = n
				}
				sev, send := runSerial(t, sys, n, richBody)
				p1, end1 := runPart(t, sys, n, parts, 1, richBody)
				pk, endk := runPart(t, sys, n, parts, parts, richBody)
				if end1 != endk {
					t.Fatalf("end time: workers=1 %v, workers=%d %v", end1, parts, endk)
				}
				for i := range p1 {
					if !reflect.DeepEqual(p1[i], pk[i]) {
						t.Fatalf("shard %d streams diverge between workers=1 and workers=%d", i, parts)
					}
				}
				if parts == 1 {
					if send != end1 {
						t.Fatalf("end time: serial %v, 1-partition %v", send, end1)
					}
					if !reflect.DeepEqual(sev, p1[0]) {
						t.Fatalf("1-partition stream diverges from serial")
					}
				} else {
					// Across the serial/partitioned transport boundary only
					// the event count is directly comparable (cross events
					// carry shard-local delivery detail); end times match
					// whenever no cross rendezvous reshapes the schedule, so
					// assert the cheap invariant that both runs completed.
					total := 0
					for _, s := range p1 {
						total += len(s)
					}
					if total == 0 && len(sev) != 0 {
						t.Fatalf("partitioned run observed no events, serial observed %d", len(sev))
					}
				}
			})
		}
	}
}

// TestPartitionCrossDeadlock: an unmatched cross-partition Ssend must
// surface as a merged deadlock report naming the blocked rank.
func TestPartitionCrossDeadlock(t *testing.T) {
	sys := cluster.Cichlid()
	pe := sim.NewPartitionedEngineMatrix(cluster.LookaheadMatrix(sys, 4, 2))
	pw := NewPartWorld(pe, sys, 4)
	pw.LaunchRanks("rank", func(p *sim.Proc, ep *Endpoint) {
		if ep.Rank() == 0 {
			// Synchronous send nobody will ever receive.
			_ = ep.Ssend(p, make([]byte, 64), 3, 9, ep.World().Comm())
		}
	})
	err := pw.Run(2)
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	found := false
	for _, b := range dl.Blocked {
		if strings.Contains(b, "rank.rank0") && strings.Contains(b, "ssend 0->3 tag 9") {
			found = true
		}
	}
	if !found {
		t.Fatalf("deadlock report misses the blocked ssend: %v", dl.Blocked)
	}
}

// TestPartitionCrossPayloads pins the data-integrity corners of the cross
// transport directly: eager and rendezvous payload content, rendezvous
// sender completion on truncation, and cross Ssend completion.
func TestPartitionCrossPayloads(t *testing.T) {
	sys := cluster.RICC()
	pe := sim.NewPartitionedEngineMatrix(cluster.LookaheadMatrix(sys, 4, 2))
	pw := NewPartWorld(pe, sys, 4)
	pw.LaunchRanks("rank", func(p *sim.Proc, ep *Endpoint) {
		comm := ep.World().Comm()
		switch ep.Rank() {
		case 0:
			small := []byte{1, 2, 3, 4}
			if err := ep.Send(p, small, 3, 1, Bytes, comm); err != nil {
				panic(err)
			}
			big := make([]byte, EagerThreshold+100)
			big[EagerThreshold+99] = 42
			if err := ep.Send(p, big, 3, 2, Bytes, comm); err != nil {
				panic(err)
			}
			// Rendezvous into a too-small buffer: the sender still
			// completes (no data phase runs).
			if err := ep.Send(p, big, 3, 3, Bytes, comm); err != nil {
				panic(err)
			}
			if err := ep.Ssend(p, small, 3, 4, comm); err != nil {
				panic(err)
			}
		case 3:
			got := make([]byte, 4)
			if _, err := ep.Recv(p, got, 0, 1, Bytes, comm); err != nil {
				panic(err)
			}
			if got[3] != 4 {
				panic("cross eager payload corrupted")
			}
			big := make([]byte, EagerThreshold+100)
			if _, err := ep.Recv(p, big, 0, 2, Bytes, comm); err != nil {
				panic(err)
			}
			if big[EagerThreshold+99] != 42 {
				panic("cross rndv payload corrupted")
			}
			tiny := make([]byte, 8)
			if _, err := ep.Recv(p, tiny, 0, 3, Bytes, comm); !errors.Is(err, ErrTruncate) {
				panic(fmt.Sprintf("cross rndv truncation: got %v", err))
			}
			if _, err := ep.Recv(p, got, 0, 4, Bytes, comm); err != nil {
				panic(err)
			}
		}
	})
	if err := pw.Run(2); err != nil {
		t.Fatalf("run: %v", err)
	}
}
