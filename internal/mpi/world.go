package mpi

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// World is one MPI job: a set of ranks mapped 1:1 onto cluster nodes,
// sharing a fabric. It owns the world communicator.
type World struct {
	eng    *sim.Engine
	clus   *cluster.Cluster
	size   int
	world  *Comm
	hook   CLMemHook
	msgObs MsgObserver
	seq    uint64 // global message sequence for deterministic tie-breaks
	// newMatch builds the matching core for each communicator. Tests swap it
	// (before any traffic) to run the legacy linear-scan oracle side by side.
	newMatch func(size int) matchEngine

	// part is non-nil when this world is one shard of a PartWorld: sends to
	// non-local ranks route through the cross-partition transport, and
	// engine-owned transport objects recycle through the pools below.
	part    *partShard
	msgPool sim.Pool[message]
	ropPool sim.Pool[recvOp]
}

// NewWorld creates a job spanning every node of the cluster.
func NewWorld(c *cluster.Cluster) *World {
	w := &World{eng: c.Eng, clus: c, size: len(c.Nodes)}
	w.newMatch = func(n int) matchEngine { return newBucketMatcher(n) }
	w.world = newComm(w, "MPI_COMM_WORLD")
	return w
}

// Size reports the number of ranks.
func (w *World) Size() int { return w.size }

// nextSeq advances the world's message-sequence counter. A multi-shard
// partitioned world strides the per-shard counter by the shard count with
// the shard index as offset, so sequence numbers stay globally unique and
// per-shard monotonic; serial worlds and 1-partition worlds degenerate to
// the plain counter exactly.
func (w *World) nextSeq() uint64 {
	w.seq++
	if ps := w.part; ps != nil && ps.parts() > 1 {
		return w.seq*uint64(ps.parts()) + uint64(ps.idx)
	}
	return w.seq
}

// getMsg returns a message, recycled in partitioned worlds.
func (w *World) getMsg() *message {
	if w.part != nil {
		return w.msgPool.Get()
	}
	return &message{}
}

// putMsg recycles an engine-owned message in partitioned worlds. The caller
// must guarantee no reference survives (unlinked from the matcher, payload
// released, no pending trigger callbacks).
func (w *World) putMsg(m *message) {
	if w.part != nil {
		w.msgPool.Put(m)
	}
}

// getRop returns a receive op, recycled in partitioned worlds.
func (w *World) getRop() *recvOp {
	if w.part != nil {
		return w.ropPool.Get()
	}
	return &recvOp{}
}

// putRop recycles a receive op in partitioned worlds; same ownership
// contract as putMsg.
func (w *World) putRop(r *recvOp) {
	if w.part != nil {
		w.ropPool.Put(r)
	}
}

// Comm returns the world communicator.
func (w *World) Comm() *Comm { return w.world }

// Engine returns the simulation engine.
func (w *World) Engine() *sim.Engine { return w.eng }

// Cluster returns the modelled cluster the world runs on (a partial cluster
// for one shard of a partitioned world).
func (w *World) Cluster() *cluster.Cluster { return w.clus }

// Node returns the cluster node hosting the given rank.
func (w *World) Node(rank int) *cluster.Node { return w.clus.Nodes[rank] }

// CLMemHook lets an accelerator runtime take over transfers whose datatype
// is CLMem, the paper's MPI_CL_MEM (§IV-C): the hook sees standard MPI
// arguments and implements the host↔device collaboration behind them. The
// clMPI runtime (internal/clmpi) registers itself here.
type CLMemHook interface {
	IsendCLMem(p *sim.Proc, ep *Endpoint, buf []byte, dest, tag int, comm *Comm) (*Request, error)
	IrecvCLMem(p *sim.Proc, ep *Endpoint, buf []byte, src, tag int, comm *Comm) (*Request, error)
}

// RegisterCLMemHook installs the CL_MEM handler for this world.
func (w *World) RegisterCLMemHook(h CLMemHook) { w.hook = h }

// MsgEventKind names a message protocol phase.
type MsgEventKind int

const (
	// MsgSendPosted fires when a send enters the transport (Isend/Send).
	MsgSendPosted MsgEventKind = iota
	// MsgRecvPosted fires when a receive is posted (Irecv/Recv).
	MsgRecvPosted
	// MsgMatched fires when a message pairs with a posted receive.
	MsgMatched
	// MsgDelivered fires when the receive completes (payload in place).
	MsgDelivered
	// MsgWireDone fires when a message's wire transfer (eager body or
	// rendezvous data phase) has fully left the fabric — immediately after
	// the NIC charges land, on the transport process, so observers can
	// correlate the preceding link-occupancy records with the message.
	MsgWireDone
)

func (k MsgEventKind) String() string {
	switch k {
	case MsgSendPosted:
		return "send-posted"
	case MsgRecvPosted:
		return "recv-posted"
	case MsgMatched:
		return "matched"
	case MsgDelivered:
		return "delivered"
	case MsgWireDone:
		return "wire-done"
	default:
		return fmt.Sprintf("MsgEventKind(%d)", int(k))
	}
}

// MsgEvent describes one protocol phase of one message. Seq identifies the
// message (or, for MsgRecvPosted, the receive operation) across events of
// one world. For MsgRecvPosted, Src may be AnySource and Tag AnyTag.
type MsgEvent struct {
	Kind     MsgEventKind
	Src, Dst int
	Tag      int
	Seq      uint64
	// RecvSeq is the matched receive operation's sequence number, set on
	// MsgMatched and MsgDelivered so observers can pair a message with the
	// MsgRecvPosted event that claimed it.
	RecvSeq uint64
	Bytes   int
	Eager   bool // eager protocol (meaningful from MsgSendPosted on)
	At      sim.Time
	// PostedDepth and UnexpectedDepth are the destination rank's
	// matching-queue depths — posted receives and unexpected (pending)
	// messages — immediately after the event's action took effect. The
	// observability layer derives per-rank high-water marks from them.
	PostedDepth     int
	UnexpectedDepth int
}

// MsgObserver receives message protocol-phase notifications from a world.
// The observability layer (internal/trace) uses this to build per-message
// timelines and eager/rendezvous metrics.
type MsgObserver interface {
	MessageEvent(ev MsgEvent)
}

// SetMsgObserver installs the protocol observer (nil to remove).
func (w *World) SetMsgObserver(o MsgObserver) { w.msgObs = o }

// observe forwards ev to the observer when one is installed.
func (w *World) observe(ev MsgEvent) {
	if w.msgObs != nil {
		w.msgObs.MessageEvent(ev)
	}
}

// Endpoint is a rank's handle on the runtime. All calls on one endpoint may
// come from different simulated processes of that rank (host thread plus
// runtime helper threads) — MPI_THREAD_MULTIPLE.
type Endpoint struct {
	world *World
	rank  int
}

// Endpoint returns rank's handle.
func (w *World) Endpoint(rank int) *Endpoint {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: endpoint rank %d out of range [0,%d)", rank, w.size))
	}
	return &Endpoint{world: w, rank: rank}
}

// Rank reports this endpoint's rank.
func (ep *Endpoint) Rank() int { return ep.rank }

// Size reports the world size.
func (ep *Endpoint) Size() int { return ep.world.size }

// World returns the owning world.
func (ep *Endpoint) World() *World { return ep.world }

// Node returns the cluster node this rank runs on.
func (ep *Endpoint) Node() *cluster.Node { return ep.world.Node(ep.rank) }

// LaunchRanks spawns one host-thread process per rank running body, the
// standard SPMD entry point: body(p, ep) is rank ep.Rank()'s main.
func (w *World) LaunchRanks(name string, body func(p *sim.Proc, ep *Endpoint)) {
	lo, hi := 0, w.size
	if ps := w.part; ps != nil {
		lo, hi = ps.lo, ps.hi
	}
	for r := lo; r < hi; r++ {
		ep := w.Endpoint(r)
		// The name is diagnostic only (deadlock reports, traces): format it
		// lazily so a 100k-rank launch does not pay 100k fmt.Sprintf calls.
		w.eng.SpawnLazy(func() string { return fmt.Sprintf("%s.rank%d", name, ep.rank) },
			func(p *sim.Proc) { body(p, ep) })
	}
}

// Comm is a communicator: an isolated matching context over the world's
// ranks. Messages sent on one communicator are invisible to another.
type Comm struct {
	world *World
	name  string

	// Matching state. Access is safe without host locks because exactly
	// one simulated process runs at a time.
	match   matchEngine
	probers []*prober
}

func newComm(w *World, name string) *Comm {
	return &Comm{world: w, name: name, match: w.newMatch(w.size)}
}

// Name reports the communicator's diagnostic name.
func (c *Comm) Name() string { return c.name }

// MatchQueueDepths reports rank's current posted-receive and
// unexpected-message queue depths in this communicator's matching engine.
func (c *Comm) MatchQueueDepths(rank int) (postedRecvs, unexpected int) {
	return c.match.depths(rank)
}

// MatchQueueHighWater reports the peak posted-receive and unexpected-message
// queue depths the matching engine has seen for rank — the pressure metric
// the large-world scaling sweeps and the observability layer surface.
func (c *Comm) MatchQueueHighWater(rank int) (postedRecvs, unexpected int) {
	return c.match.highWater(rank)
}

// Dup creates a communicator with the same group but a separate matching
// context, like MPI_Comm_dup.
func (c *Comm) Dup(name string) *Comm { return newComm(c.world, name) }
