package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/sim"
)

// Additional internal tag bases for the vector collectives.
const (
	tagAllgather = -5000
	tagAlltoall  = -6000
	tagReduceVec = -7000
)

// Allgather collects each rank's equal-sized contribution on every rank,
// laid out by rank in out, like MPI_Allgather. Implemented as a ring: n-1
// steps, each forwarding the block received in the previous step — the
// bandwidth-optimal algorithm for large payloads.
func (ep *Endpoint) Allgather(p *sim.Proc, contrib []byte, out []byte, comm *Comm) error {
	n := ep.world.size
	sz := len(contrib)
	if len(out) < sz*n {
		return fmt.Errorf("%w: allgather buffer %d < %d", ErrTruncate, len(out), sz*n)
	}
	me := ep.rank
	copy(out[me*sz:(me+1)*sz], contrib)
	if n == 1 {
		return nil
	}
	right := (me + 1) % n
	left := (me - 1 + n) % n
	for step := 0; step < n-1; step++ {
		sendBlock := (me - step + n) % n
		recvBlock := (me - step - 1 + n) % n
		tag := tagAllgather - step
		sreq := ep.postSend(out[sendBlock*sz:(sendBlock+1)*sz], right, tag, comm)
		rreq := ep.postRecv(out[recvBlock*sz:(recvBlock+1)*sz], left, tag, comm)
		if err := Waitall(p, sreq, rreq); err != nil {
			return fmt.Errorf("mpi: allgather step %d: %w", step, err)
		}
	}
	return nil
}

// Alltoall performs a personalized all-to-all exchange of equal-sized
// blocks: rank i's block j in `in` lands at rank j's block i in `out`, like
// MPI_Alltoall. All 2(n-1) operations are posted before waiting, so
// disjoint pairs use the fabric concurrently and the backplane model (if
// configured) governs the aggregate.
func (ep *Endpoint) Alltoall(p *sim.Proc, in []byte, out []byte, blockSize int, comm *Comm) error {
	n := ep.world.size
	if blockSize <= 0 {
		return fmt.Errorf("mpi: alltoall block size %d", blockSize)
	}
	if len(in) < blockSize*n || len(out) < blockSize*n {
		return fmt.Errorf("%w: alltoall buffers %d/%d < %d", ErrTruncate, len(in), len(out), blockSize*n)
	}
	me := ep.rank
	copy(out[me*blockSize:(me+1)*blockSize], in[me*blockSize:(me+1)*blockSize])
	reqs := make([]*Request, 0, 2*(n-1))
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		reqs = append(reqs,
			ep.postSend(in[r*blockSize:(r+1)*blockSize], r, tagAlltoall, comm),
			ep.postRecv(out[r*blockSize:(r+1)*blockSize], r, tagAlltoall, comm))
	}
	if err := Waitall(p, reqs...); err != nil {
		return fmt.Errorf("mpi: alltoall: %w", err)
	}
	return nil
}

// ReduceSumVec element-wise sums each rank's float64 vector onto the root
// (non-roots receive nothing), like MPI_Reduce with MPI_SUM. A binomial
// reduction tree keeps the depth logarithmic; partial sums are accumulated
// in rank order within each subtree, so the result is deterministic for a
// given size (though grouped differently from a serial left-to-right sum).
func (ep *Endpoint) ReduceSumVec(p *sim.Proc, vec []float64, root int, comm *Comm) ([]float64, error) {
	n := ep.world.size
	if root < 0 || root >= n {
		return nil, fmt.Errorf("%w: reduce root %d", ErrRankRange, root)
	}
	acc := append([]float64(nil), vec...)
	if n == 1 {
		return acc, nil
	}
	vrank := (ep.rank - root + n) % n
	wire := make([]byte, 8*len(vec))
	// Binomial tree, leaves inward: at round k, vranks with bit k set send
	// their partial to vrank - 2^k and exit.
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			parent := (vrank - mask + root) % n
			for i, v := range acc {
				binary.LittleEndian.PutUint64(wire[i*8:], math.Float64bits(v))
			}
			if err := ep.Wait(p, ep.postSend(wire, parent, tagReduceVec-mask, comm)); err != nil {
				return nil, fmt.Errorf("mpi: reduce send: %w", err)
			}
			return nil, nil // non-root contribution delivered
		}
		child := vrank + mask
		if child < n {
			from := (child + root) % n
			if _, err := ep.postRecv(wire, from, tagReduceVec-mask, comm).Wait(p); err != nil {
				return nil, fmt.Errorf("mpi: reduce recv: %w", err)
			}
			for i := range acc {
				acc[i] += math.Float64frombits(binary.LittleEndian.Uint64(wire[i*8:]))
			}
		}
	}
	return acc, nil
}
