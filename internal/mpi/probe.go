package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// prober is a blocked MPI_Probe waiting for a matching message envelope.
type prober struct {
	owner    int
	src, tag int
	tr       *sim.Trigger
}

// probeMatches reuses the receive-matching rules for a probe filter.
func probeMatches(pr *prober, msg *message) bool {
	if msg.dst != pr.owner {
		return false
	}
	rop := &recvOp{owner: pr.owner, src: pr.src, tag: pr.tag}
	return matches(rop, msg)
}

// Iprobe reports, without blocking or consuming, whether a message matching
// (src, tag) — wildcards allowed — is pending for this rank, and its
// envelope if so, like MPI_Iprobe.
func (ep *Endpoint) Iprobe(src, tag int, comm *Comm) (bool, Status, error) {
	if src != AnySource && (src < 0 || src >= ep.world.size) {
		return false, Status{}, fmt.Errorf("%w: source %d", ErrRankRange, src)
	}
	if tag != AnyTag && tag < 0 {
		return false, Status{}, fmt.Errorf("%w: tag %d", ErrTagNegative, tag)
	}
	if msg := comm.match.peekMsg(ep.rank, src, tag); msg != nil {
		return true, Status{Source: msg.src, Tag: msg.tag, Count: msg.size}, nil
	}
	return false, Status{}, nil
}

// Probe blocks until a matching message is pending and returns its
// envelope without consuming it, like MPI_Probe. A subsequent Recv with the
// returned source and tag is guaranteed to match a message of the reported
// size (single-threaded per rank; concurrent receivers can race for it, as
// in MPI).
func (ep *Endpoint) Probe(p *sim.Proc, src, tag int, comm *Comm) (Status, error) {
	for {
		ok, st, err := ep.Iprobe(src, tag, comm)
		if err != nil {
			return Status{}, err
		}
		if ok {
			return st, nil
		}
		pr := &prober{
			owner: ep.rank, src: src, tag: tag,
			tr: sim.NewTrigger(ep.world.eng, fmt.Sprintf("probe %d<-%d tag %d", ep.rank, src, tag)),
		}
		comm.probers = append(comm.probers, pr)
		pr.tr.Wait(p)
		// A message for us arrived; loop to pick up its envelope (it may
		// have been consumed by a concurrent receive in the meantime).
	}
}

// notifyProbers wakes probers whose filter matches the new message.
func (c *Comm) notifyProbers(msg *message) {
	if len(c.probers) == 0 {
		return
	}
	remaining := c.probers[:0]
	for _, pr := range c.probers {
		if probeMatches(pr, msg) {
			pr.tr.Fire(nil)
		} else {
			remaining = append(remaining, pr)
		}
	}
	c.probers = remaining
}

// Ssend sends buf with synchronous-send semantics (MPI_Ssend): the call
// returns only after the matching receive has been posted and the transfer
// completed, regardless of message size — eager buffering is disabled. A
// synchronous self-send therefore requires a receive posted by another
// process of the same rank (or earlier), exactly the deadlock trap MPI_Ssend
// is famous for; the simulator's deadlock detector reports it.
func (ep *Endpoint) Ssend(p *sim.Proc, buf []byte, dest, tag int, comm *Comm) error {
	if err := ep.checkArgs(dest, tag); err != nil {
		return err
	}
	w := ep.world
	if ps := w.part; ps != nil && !ps.local(dest) {
		req := ps.crossSend(ep, buf, dest, tag, comm, true)
		_, err := req.Wait(p)
		return err
	}
	msg := w.getMsg()
	msg.src, msg.dst, msg.tag, msg.seq = ep.rank, dest, tag, w.nextSeq()
	msg.size = len(buf)
	msg.sendBuf = buf // rendezvous path: completes only on match
	msg.req = newReqCoded(w.eng, reqSsend, ep.rank, dest, tag)
	msg.req.seq = msg.seq
	comm.match.addMsg(msg)
	comm.matchPostedMsg(msg)
	_, err := msg.req.Wait(p)
	return err
}
