package mpi

import (
	"math/rand"
	"testing"
)

// Property test for the matching refactor: random interleavings of the four
// runtime operations — post-send (with its consume-and-remove pairing),
// post-receive (take-or-enqueue), the send-side copy-elision prediction, and
// probes — applied in lockstep to the bucketed engine and to the legacy
// linear-scan oracle, at world sizes from 1 to 64 ranks. After every single
// operation the two engines must report the same pairing (by seq — which is
// exactly the seq-ordered, non-overtaking MPI matching order) and the same
// queue depths. Runs under -race in CI like the rest of the suite.

// propWorld drives one engine with the runtime's call patterns.
type propWorld struct {
	eng matchEngine
	seq uint64
}

func (w *propWorld) send(src, dst, tag int) (msgSeq uint64, matched uint64) {
	w.seq++
	msg := &message{src: src, dst: dst, tag: tag, seq: w.seq, size: 64}
	w.eng.addMsg(msg)
	if rop := w.eng.matchMsg(msg, true); rop != nil {
		w.eng.removeMsg(msg)
		return msg.seq, rop.seq
	}
	return msg.seq, 0
}

func (w *propWorld) recv(owner, src, tag int) (ropSeq uint64, took uint64) {
	w.seq++
	rop := &recvOp{owner: owner, src: src, tag: tag, seq: w.seq}
	if msg := w.eng.takeMsg(rop); msg != nil {
		return rop.seq, msg.seq
	}
	w.eng.addRecv(rop)
	return rop.seq, 0
}

func (w *propWorld) predict(src, dst, tag int) uint64 {
	// firstMatch: a pure prediction for a message that is not enqueued.
	msg := &message{src: src, dst: dst, tag: tag, seq: w.seq + 1, size: 64}
	if rop := w.eng.matchMsg(msg, false); rop != nil {
		return rop.seq
	}
	return 0
}

func (w *propWorld) probe(owner, src, tag int) uint64 {
	if msg := w.eng.peekMsg(owner, src, tag); msg != nil {
		return msg.seq
	}
	return 0
}

// randTag picks a user tag, with an occasional internal collective tag.
func randTag(rng *rand.Rand) int {
	if rng.Intn(5) == 0 {
		return -1000 - 100*rng.Intn(3) - rng.Intn(4) // collective round tags
	}
	return rng.Intn(5)
}

// randFilter picks a receive/probe (src, tag) filter with wildcards.
func randFilter(rng *rand.Rand, ranks int) (src, tag int) {
	src = rng.Intn(ranks)
	if rng.Intn(3) == 0 {
		src = AnySource
	}
	tag = randTag(rng)
	if tag >= 0 && rng.Intn(3) == 0 {
		tag = AnyTag
	}
	return src, tag
}

func TestMatchPropertyRandomInterleavings(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ranks := 1 + rng.Intn(64)
		bucket := &propWorld{eng: newBucketMatcher(ranks)}
		legacy := &propWorld{eng: newLegacyMatchEngine()}
		ops := 300 + rng.Intn(700)
		for op := 0; op < ops; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // post-send
				src, dst, tag := rng.Intn(ranks), rng.Intn(ranks), randTag(rng)
				bm, br := bucket.send(src, dst, tag)
				lm, lr := legacy.send(src, dst, tag)
				if bm != lm || br != lr {
					t.Fatalf("seed %d op %d: send(%d->%d tag %d) paired bucket=(msg %d, recv %d) legacy=(msg %d, recv %d)",
						seed, op, src, dst, tag, bm, br, lm, lr)
				}
			case 4, 5, 6, 7: // post-receive
				owner := rng.Intn(ranks)
				src, tag := randFilter(rng, ranks)
				br, bm := bucket.recv(owner, src, tag)
				lr, lm := legacy.recv(owner, src, tag)
				if br != lr || bm != lm {
					t.Fatalf("seed %d op %d: recv(owner %d, src %d, tag %d) took bucket=%d legacy=%d",
						seed, op, owner, src, tag, bm, lm)
				}
			case 8: // copy-elision prediction
				src, dst, tag := rng.Intn(ranks), rng.Intn(ranks), randTag(rng)
				if b, l := bucket.predict(src, dst, tag), legacy.predict(src, dst, tag); b != l {
					t.Fatalf("seed %d op %d: predict(%d->%d tag %d) bucket=%d legacy=%d",
						seed, op, src, dst, tag, b, l)
				}
			default: // probe
				owner := rng.Intn(ranks)
				src, tag := randFilter(rng, ranks)
				if b, l := bucket.probe(owner, src, tag), legacy.probe(owner, src, tag); b != l {
					t.Fatalf("seed %d op %d: probe(owner %d, src %d, tag %d) bucket=%d legacy=%d",
						seed, op, owner, src, tag, b, l)
				}
			}
			// seq counters advance identically; depths must agree everywhere.
			bucket.seq = legacy.seq
			r := rng.Intn(ranks)
			bp, bu := bucket.eng.depths(r)
			lp, lu := legacy.eng.depths(r)
			if bp != lp || bu != lu {
				t.Fatalf("seed %d op %d: rank %d depths bucket=(%d,%d) legacy=(%d,%d)",
					seed, op, r, bp, bu, lp, lu)
			}
		}
		for r := 0; r < ranks; r++ {
			bp, bu := bucket.eng.highWater(r)
			lp, lu := legacy.eng.highWater(r)
			if bp != lp || bu != lu {
				t.Fatalf("seed %d: rank %d high-water bucket=(%d,%d) legacy=(%d,%d)",
					seed, r, bp, bu, lp, lu)
			}
		}
	}
}
