package mpi

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestWaitanyReturnsFirstCompletion(t *testing.T) {
	e, w := rig(t, cluster.RICC(), 3)
	w.LaunchRanks("t", func(p *sim.Proc, ep *Endpoint) {
		switch ep.Rank() {
		case 1:
			p.Sleep(10 * time.Millisecond)
			ep.Send(p, []byte{1}, 0, 1, Bytes, w.Comm())
		case 2:
			p.Sleep(2 * time.Millisecond)
			ep.Send(p, []byte{2}, 0, 2, Bytes, w.Comm())
		case 0:
			b1, b2 := make([]byte, 1), make([]byte, 1)
			r1, _ := ep.Irecv(p, b1, 1, 1, Bytes, w.Comm())
			r2, _ := ep.Irecv(p, b2, 2, 2, Bytes, w.Comm())
			idx, st, err := Waitany(p, r1, r2)
			if err != nil {
				t.Errorf("waitany: %v", err)
			}
			if idx != 1 || st.Source != 2 {
				t.Errorf("waitany picked %d (%+v), want the rank-2 message", idx, st)
			}
			// Drain the other.
			if _, err := r1.Wait(p); err != nil {
				t.Errorf("drain: %v", err)
			}
		}
	})
	mustRun(t, e)
}

func TestWaitanyAlreadyComplete(t *testing.T) {
	e, w := rig(t, cluster.RICC(), 2)
	w.LaunchRanks("t", func(p *sim.Proc, ep *Endpoint) {
		if ep.Rank() == 1 {
			ep.Send(p, []byte{9}, 0, 0, Bytes, w.Comm())
			return
		}
		buf := make([]byte, 1)
		r, _ := ep.Irecv(p, buf, 1, 0, Bytes, w.Comm())
		r.Wait(p)
		idx, _, err := Waitany(p, nil, r)
		if idx != 1 || err != nil {
			t.Errorf("waitany on completed = %d, %v", idx, err)
		}
	})
	mustRun(t, e)
}

func TestWaitanyAllNil(t *testing.T) {
	e, w := rig(t, cluster.RICC(), 1)
	w.LaunchRanks("t", func(p *sim.Proc, ep *Endpoint) {
		if idx, _, _ := Waitany(p, nil, nil); idx != -1 {
			t.Errorf("all-nil waitany = %d", idx)
		}
	})
	mustRun(t, e)
}
