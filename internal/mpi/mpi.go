// Package mpi implements an MPI-like message-passing runtime on the
// simulation substrate. Each rank maps to one cluster node; any number of
// simulated processes may call into an endpoint concurrently, modelling
// MPI_THREAD_MULTIPLE — the threading level the clMPI paper requires of the
// underlying MPI implementation (§V-A).
//
// Semantics follow MPI where the paper depends on them:
//
//   - point-to-point send/recv with tags, MPI_ANY_SOURCE / MPI_ANY_TAG
//     wildcards, and non-overtaking ordering between a (sender, receiver,
//     communicator) pair;
//   - nonblocking operations returning Requests with Wait/Test;
//   - an eager protocol for small messages (the send buffer is captured and
//     the send completes as soon as the NIC accepts it) and a rendezvous
//     protocol for large ones (the send completes only after the matching
//     receive is posted and the wire transfer finishes);
//   - communicators with isolated matching (Dup);
//   - binomial-tree Bcast and dissemination Barrier, built from the
//     point-to-point layer.
//
// Timing charges the sender's NIC transmit path and the receiver's NIC
// receive path concurrently (cut-through) for the serialization time, plus
// the fabric's wire latency and per-message software overhead taken from the
// cluster model. Message payloads are real bytes.
package mpi

import "errors"

// Wildcards and limits.
const (
	// AnySource matches a message from any rank, like MPI_ANY_SOURCE.
	AnySource = -1
	// AnyTag matches any non-negative user tag, like MPI_ANY_TAG.
	AnyTag = -1
	// EagerThreshold is the message size, in bytes, at or below which the
	// eager protocol applies. 64 KiB mirrors common Open MPI defaults.
	EagerThreshold = 64 << 10
)

// Errors reported by the runtime.
var (
	ErrRankRange   = errors.New("mpi: rank out of range")
	ErrTagNegative = errors.New("mpi: user tags must be non-negative")
	ErrTruncate    = errors.New("mpi: message truncated (receive buffer too small)")
	ErrNoCLMemHook = errors.New("mpi: no CL_MEM handler registered")
	ErrRequestDone = errors.New("mpi: operation on completed request")
)

// Status describes a completed receive, like MPI_Status.
type Status struct {
	Source int // sending rank
	Tag    int // message tag
	Count  int // payload bytes delivered
}
