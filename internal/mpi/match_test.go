package mpi

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Engine-level unit tests for the bucketed matcher, driven with raw
// message/recvOp values (no simulation): lane FIFO order, the min-seq merge
// across wildcard lanes, sentinel guards, and — the regression the refactor
// was partly for — that removal never retains pointers.

func mkMsg(src, dst, tag int, seq uint64) *message {
	return &message{src: src, dst: dst, tag: tag, seq: seq, size: 1}
}

func mkRecv(owner, src, tag int, seq uint64) *recvOp {
	return &recvOp{owner: owner, src: src, tag: tag, seq: seq}
}

func TestBucketMatcherMinSeqMerge(t *testing.T) {
	m := newBucketMatcher(4)
	// Four lanes can accept (src=1, tag=7) at dst 2; the smallest seq must
	// win regardless of which lane holds it.
	exact := mkRecv(2, 1, 7, 40)
	anySrc := mkRecv(2, AnySource, 7, 30)
	anyTag := mkRecv(2, 1, AnyTag, 20)
	dblWild := mkRecv(2, AnySource, AnyTag, 10)
	for _, r := range []*recvOp{exact, anySrc, anyTag, dblWild} {
		m.addRecv(r)
	}
	want := []*recvOp{dblWild, anyTag, anySrc, exact}
	for i, w := range want {
		got := m.matchMsg(mkMsg(1, 2, 7, 100+uint64(i)), true)
		if got != w {
			t.Fatalf("match %d: got seq %d, want seq %d", i, got.seq, w.seq)
		}
	}
	if got := m.matchMsg(mkMsg(1, 2, 7, 200), true); got != nil {
		t.Fatalf("drained bucket still matched seq %d", got.seq)
	}
}

func TestBucketMatcherLaneFIFO(t *testing.T) {
	m := newBucketMatcher(2)
	a, b, c := mkMsg(0, 1, 3, 1), mkMsg(0, 1, 3, 2), mkMsg(0, 1, 3, 3)
	for _, msg := range []*message{a, b, c} {
		m.addMsg(msg)
	}
	for i, want := range []*message{a, b, c} {
		got := m.takeMsg(mkRecv(1, 0, 3, uint64(10+i)))
		if got != want {
			t.Fatalf("take %d: got seq %d, want seq %d", i, got.seq, want.seq)
		}
	}
}

func TestBucketMatcherSentinelGuards(t *testing.T) {
	m := newBucketMatcher(2)
	m.addRecv(mkRecv(1, AnySource, AnyTag, 1))
	m.addRecv(mkRecv(1, 0, AnyTag, 2))
	// Internal collective traffic (negative tags) must never match an AnyTag
	// receive — mirroring matches().
	if got := m.matchMsg(mkMsg(0, 1, -1000, 5), true); got != nil {
		t.Fatalf("negative-tag message matched wildcard receive seq %d", got.seq)
	}
	m.addRecv(mkRecv(1, AnySource, -1000, 3))
	if got := m.matchMsg(mkMsg(0, 1, -1000, 6), true); got == nil || got.seq != 3 {
		t.Fatalf("negative-tag message did not match its exact-tag wildcard-source receive: %+v", got)
	}
}

func TestBucketMatcherWildcardProbeArrivalOrder(t *testing.T) {
	m := newBucketMatcher(2)
	m.addMsg(mkMsg(0, 1, 5, 1))
	m.addMsg(mkMsg(0, 1, 9, 2))
	m.addMsg(mkMsg(0, 1, 5, 3))
	if got := m.peekMsg(1, AnySource, AnyTag); got == nil || got.seq != 1 {
		t.Fatalf("double wildcard probe: got %+v, want seq 1", got)
	}
	if got := m.peekMsg(1, AnySource, 9); got == nil || got.seq != 2 {
		t.Fatalf("tag-9 probe: got %+v, want seq 2", got)
	}
	if got := m.takeMsg(mkRecv(1, 0, AnyTag, 10)); got == nil || got.seq != 1 {
		t.Fatalf("AnyTag take: got %+v, want seq 1", got)
	}
	if got := m.takeMsg(mkRecv(1, 0, AnyTag, 11)); got == nil || got.seq != 2 {
		t.Fatalf("AnyTag take after removal: got %+v, want seq 2", got)
	}
}

// unlinked reports whether every intrusive link of msg is nil.
func msgUnlinked(msg *message) bool {
	return msg.laneNext == nil && msg.lanePrev == nil &&
		msg.arrNext == nil && msg.arrPrev == nil
}

// TestBucketMatcherNoPointerRetention is the leak-style regression test for
// the old append(s[:i], s[i+1:]...) removals, which kept dropped entries
// reachable from the slice tail. With intrusive lists, a removed element must
// come back with every link nil — holding no queue memory and being held by
// none — even when removed from the middle of both its lane and the arrival
// list.
func TestBucketMatcherNoPointerRetention(t *testing.T) {
	m := newBucketMatcher(3)
	var msgs []*message
	for i := 0; i < 9; i++ {
		msg := mkMsg(i%3, 2, 4+i%2, uint64(i+1))
		msgs = append(msgs, msg)
		m.addMsg(msg)
	}
	// Remove from the middle first, then head, then tail.
	for _, i := range []int{4, 0, 8, 2, 6, 1, 5, 3, 7} {
		m.removeMsg(msgs[i])
		if !msgUnlinked(msgs[i]) {
			t.Fatalf("message %d retains links after removal: %+v", i, msgs[i])
		}
	}
	var rops []*recvOp
	for i := 0; i < 6; i++ {
		rop := mkRecv(2, AnySource, 4+i%2, uint64(100+i))
		rops = append(rops, rop)
		m.addRecv(rop)
	}
	for _, i := range []int{2, 0, 5, 1, 4, 3} {
		m.removeRecv(rops[i])
		if rops[i].laneNext != nil || rops[i].lanePrev != nil {
			t.Fatalf("receive %d retains links after removal", i)
		}
	}
	for r := 0; r < 3; r++ {
		if p, u := m.depths(r); p != 0 || u != 0 {
			t.Fatalf("rank %d not drained: posted=%d unexpected=%d", r, p, u)
		}
		b := &m.buckets[r]
		if b.arrHead != nil || b.arrTail != nil {
			t.Fatalf("rank %d arrival list not empty", r)
		}
		for k, ln := range b.msgLanes {
			if ln.head != nil || ln.tail != nil {
				t.Fatalf("rank %d msg lane %v not empty", r, k)
			}
		}
		for k, ln := range b.recvLanes {
			if ln.head != nil || ln.tail != nil {
				t.Fatalf("rank %d recv lane %v not empty", r, k)
			}
		}
	}
	if p, u := m.highWater(2); p != 6 || u != 9 {
		t.Fatalf("high-water marks: posted=%d unexpected=%d, want 6/9", p, u)
	}
}

// TestMatchDrainAfterWorkload runs a real simulation and then checks the
// production communicator's matcher is fully drained: no lingering queue
// entries and zero depths on every rank — the end-to-end form of the
// retention regression test.
func TestMatchDrainAfterWorkload(t *testing.T) {
	e := sim.NewEngine()
	w := NewWorld(cluster.New(e, cluster.RICC(), 8))
	w.LaunchRanks("drain", func(p *sim.Proc, ep *Endpoint) {
		denseExactBody(p, ep, w, new([]byte))
		if err := ep.Barrier(p, w.Comm()); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	m, ok := w.world.match.(*bucketMatcher)
	if !ok {
		t.Fatalf("world is not on the bucket matcher: %T", w.world.match)
	}
	for r := 0; r < w.Size(); r++ {
		if p, u := m.depths(r); p != 0 || u != 0 {
			t.Errorf("rank %d: posted=%d unexpected=%d after drain", r, p, u)
		}
		b := &m.buckets[r]
		if b.arrHead != nil || b.arrTail != nil {
			t.Errorf("rank %d: arrival list not empty", r)
		}
		for k, ln := range b.msgLanes {
			if ln.head != nil {
				t.Errorf("rank %d: msg lane %v holds seq %d", r, k, ln.head.seq)
			}
		}
		for k, ln := range b.recvLanes {
			if ln.head != nil {
				t.Errorf("rank %d: recv lane %v holds seq %d", r, k, ln.head.seq)
			}
		}
		hp, hu := w.Comm().MatchQueueHighWater(r)
		if hp <= 0 && hu <= 0 {
			t.Errorf("rank %d: high-water marks never moved (posted=%d unexpected=%d)", r, hp, hu)
		}
	}
}
