package mpi

import (
	"fmt"
	"time"

	"repro/internal/bytepool"
	"repro/internal/sim"
)

// localOverhead is the software cost of a self-message (shared-memory copy
// path inside one node).
const localOverhead = time.Microsecond

// Datatype tags the memory class of a transfer. Payloads are always raw
// bytes; the datatype only selects the transfer machinery, which is exactly
// how the paper employs MPI_CL_MEM (§IV-C).
type Datatype int

const (
	// Bytes is ordinary host memory.
	Bytes Datatype = iota
	// CLMem marks the peer buffer as device-resident: the transfer is
	// delegated to the registered CLMemHook (the clMPI runtime), which
	// collaborates with the sender for efficient host↔device staging.
	CLMem
)

// message is a posted send awaiting (or matched to) a receive.
type message struct {
	src, dst, tag int
	seq           uint64
	size          int
	eager         bool
	payload       []byte // eager: pooled captured copy; rendezvous/direct: nil
	sendBuf       []byte // rendezvous (and direct self-sends): the live send buffer
	// direct marks an intra-node copy elision: a matching receive was
	// already posted when the send arrived, so delivery fills the
	// receiver-owned buffer straight from the sender's (no intermediate
	// payload capture). Set only when matching is synchronous with the send.
	direct  bool
	arrived sim.Trigger // data available at the receiver (eager/local)
	req     *Request
	// Cross-partition markers (see partition.go). xArrived: an injected
	// eager envelope whose payload came with it (req is nil — the sender's
	// request completed on its own shard). xRndv: an injected rendezvous
	// envelope whose data phase runs as a separate cross event once the
	// receiver grants clear-to-send (req is nil here too).
	xArrived bool
	xRndv    bool

	// Intrusive matcher links (see match.go): the (src, tag) lane FIFO and
	// the destination rank's arrival list. Nil once unlinked, so a matched
	// message retains nothing.
	laneNext, lanePrev *message
	arrNext, arrPrev   *message
}

// recvOp is a posted receive awaiting a message.
type recvOp struct {
	owner    int // the rank that posted the receive
	src, tag int // may be AnySource / AnyTag
	seq      uint64
	buf      []byte
	req      *Request

	// Intrusive matcher links: the literal (src, tag) lane FIFO.
	laneNext, lanePrev *recvOp
}

// Isend starts a nonblocking send of buf to rank dest with the given tag,
// like MPI_Isend. With dtype CLMem the registered hook takes over.
//
// Eager messages (≤ EagerThreshold) capture the payload immediately: the
// request completes once the NIC has accepted the data, regardless of the
// receiver. Larger messages use rendezvous: the request completes only after
// the matching receive is posted and the wire transfer has finished.
func (ep *Endpoint) Isend(p *sim.Proc, buf []byte, dest, tag int, dtype Datatype, comm *Comm) (*Request, error) {
	if err := ep.checkArgs(dest, tag); err != nil {
		return nil, err
	}
	if dtype == CLMem {
		if ep.world.hook == nil {
			return nil, ErrNoCLMemHook
		}
		return ep.world.hook.IsendCLMem(p, ep, buf, dest, tag, comm)
	}
	return ep.postSend(buf, dest, tag, comm), nil
}

// postSend is the transport-level send, shared by user sends and internal
// collective traffic (which uses negative tags).
func (ep *Endpoint) postSend(buf []byte, dest, tag int, comm *Comm) *Request {
	w := ep.world
	if ps := w.part; ps != nil && !ps.local(dest) && dest != ep.rank {
		// Destination lives on another partition: route through the
		// cross-partition transport (see partition.go).
		return ps.crossSend(ep, buf, dest, tag, comm, false)
	}
	msg := w.getMsg()
	msg.src, msg.dst, msg.tag, msg.seq = ep.rank, dest, tag, w.nextSeq()
	msg.size = len(buf)
	msg.req = newReqCoded(w.eng, reqIsend, ep.rank, dest, tag)
	msg.req.seq = msg.seq
	switch {
	case dest == ep.rank:
		// Self-message: a shared-memory copy, no NIC involved.
		msg.eager = true
		msg.arrived.Init(w.eng, "self-msg")
		if rop := comm.firstMatch(msg); rop != nil && msg.size <= len(rop.buf) {
			// Copy elision: the receive is already posted, and matching
			// happens synchronously below, so delivery can fill the
			// receiver's buffer directly from the (still untouched) send
			// buffer instead of staging a payload copy.
			msg.direct = true
			msg.sendBuf = buf
		} else {
			msg.payload = bytepool.Get(len(buf))
			copy(msg.payload, buf)
		}
		d := localOverhead + secondsToDur(float64(len(buf))/ep.Node().Sys.CPU.MemBW)
		msg.arrived.FireAfter(d, nil)
		msg.req.completeAfter(d, Status{}, nil)
	case len(buf) <= EagerThreshold:
		msg.eager = true
		msg.payload = bytepool.Get(len(buf))
		copy(msg.payload, buf)
		msg.arrived.Init(w.eng, "eager-msg")
		if ps := w.part; ps != nil && ps.parts() > 1 {
			// Partitioned runs route intra-shard eager transfers through the
			// source node's resident NIC daemon: the same wire charges and
			// completion order as the transient process below, without a
			// goroutine + channel + formatted name per message.
			ps.enqueueTx(ep.rank, txJob{kind: txEagerLocal, msg: msg})
			break
		}
		w.eng.SpawnLazy(func() string { return fmt.Sprintf("eager %d->%d", msg.src, msg.dst) },
			func(tp *sim.Proc) {
				ep.wireTransfer(tp, dest, int64(msg.size))
				w.observe(MsgEvent{Kind: MsgWireDone, Src: msg.src, Dst: msg.dst, Tag: msg.tag,
					Seq: msg.seq, Bytes: msg.size, Eager: true, At: tp.Now()})
				// The NIC has the data: the sender's buffer is free.
				msg.req.complete(Status{}, nil)
				msg.arrived.FireAfter(w.clus.Sys.NIC.WireLatency, nil)
			})
	default:
		msg.sendBuf = buf // rendezvous: transfer happens at match time
	}
	comm.match.addMsg(msg)
	pd, ud := comm.match.depths(msg.dst)
	w.observe(MsgEvent{Kind: MsgSendPosted, Src: msg.src, Dst: msg.dst, Tag: msg.tag,
		Seq: msg.seq, Bytes: msg.size, Eager: msg.eager, At: w.eng.Now(),
		PostedDepth: pd, UnexpectedDepth: ud})
	comm.matchPostedMsg(msg)
	return msg.req
}

// Irecv starts a nonblocking receive into buf from rank src (or AnySource)
// with the given tag (or AnyTag), like MPI_Irecv. With dtype CLMem the
// registered hook takes over.
func (ep *Endpoint) Irecv(p *sim.Proc, buf []byte, src, tag int, dtype Datatype, comm *Comm) (*Request, error) {
	if src != AnySource {
		if src < 0 || src >= ep.world.size {
			return nil, fmt.Errorf("%w: source %d", ErrRankRange, src)
		}
	}
	if tag != AnyTag && tag < 0 {
		return nil, fmt.Errorf("%w: tag %d", ErrTagNegative, tag)
	}
	if dtype == CLMem {
		if ep.world.hook == nil {
			return nil, ErrNoCLMemHook
		}
		return ep.world.hook.IrecvCLMem(p, ep, buf, src, tag, comm)
	}
	return ep.postRecv(buf, src, tag, comm), nil
}

// postRecv is the transport-level receive, shared by user receives and
// internal collective traffic.
func (ep *Endpoint) postRecv(buf []byte, src, tag int, comm *Comm) *Request {
	w := ep.world
	rop := w.getRop()
	rop.owner = ep.rank
	rop.src, rop.tag, rop.seq, rop.buf = src, tag, w.nextSeq(), buf
	rop.req = newReqCoded(w.eng, reqIrecv, ep.rank, src, tag)
	rop.req.seq = rop.seq
	// deliver may recycle rop through the world's pool (partitioned runs),
	// so everything needed after it runs is snapshotted here.
	req, seq := rop.req, rop.seq
	// Take the earliest pending message in arrival order (non-overtaking per
	// sender); only an unmatched receive joins the posted queue.
	msg := comm.match.takeMsg(rop)
	if msg == nil {
		comm.match.addRecv(rop)
	}
	pd, ud := comm.match.depths(ep.rank)
	w.observe(MsgEvent{Kind: MsgRecvPosted, Src: src, Dst: ep.rank, Tag: tag,
		Seq: seq, Bytes: len(buf), At: w.eng.Now(),
		PostedDepth: pd, UnexpectedDepth: ud})
	if msg != nil {
		comm.deliver(msg, rop)
	}
	return req
}

// matches reports whether a posted receive accepts a message. Wildcard tags
// only match user messages (non-negative tags), so internal collective
// traffic can never satisfy an AnyTag receive.
func matches(rop *recvOp, msg *message) bool {
	if rop.src != AnySource && rop.src != msg.src {
		return false
	}
	if rop.tag == AnyTag {
		return msg.tag >= 0
	}
	return rop.tag == msg.tag
}

// firstMatch returns the posted receive that matchPostedMsg would pair msg
// with, or nil — the send-side copy-elision prediction. It shares the
// engine's selection code with the real match, so the two cannot drift.
func (c *Comm) firstMatch(msg *message) *recvOp {
	return c.match.matchMsg(msg, false)
}

// matchPostedMsg wakes matching probers and pairs a just-enqueued message
// against posted receives — the shared tail of every send path.
func (c *Comm) matchPostedMsg(msg *message) {
	c.notifyProbers(msg)
	if rop := c.match.matchMsg(msg, true); rop != nil {
		c.match.removeMsg(msg)
		c.deliver(msg, rop)
	}
}
