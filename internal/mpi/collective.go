package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/sim"
)

// Collectives are built from the point-to-point layer using negative
// internal tags, which user-level wildcard receives can never match (see
// matches). The paper's extension deliberately leaves collectives to MPI
// (§IV-C: "it does not currently offer any collective communications"), so
// these exist to support applications and tests, not the clMPI runtime.

// Internal tag bases; the round or phase number is added to each.
const (
	tagBarrier = -1000
	tagBcast   = -2000
	tagGather  = -3000
	tagReduce  = -4000
)

// Barrier blocks until every rank of the communicator has entered it,
// using the dissemination algorithm: ⌈log₂ n⌉ rounds of one-byte messages.
func (ep *Endpoint) Barrier(p *sim.Proc, comm *Comm) error {
	n := ep.world.size
	if n == 1 {
		return nil
	}
	me := ep.rank
	one := []byte{1}
	in := make([]byte, 1)
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		to := (me + dist) % n
		from := (me - dist + n) % n
		tag := tagBarrier - round
		sreq := ep.postSend(one, to, tag, comm)
		rreq := ep.postRecv(in, from, tag, comm)
		if _, err := sreq.Wait(p); err != nil {
			return fmt.Errorf("mpi: barrier round %d: %w", round, err)
		}
		if _, err := rreq.Wait(p); err != nil {
			return fmt.Errorf("mpi: barrier round %d: %w", round, err)
		}
	}
	return nil
}

// Bcast distributes root's buf to every rank along a binomial tree, like
// MPI_Bcast. All ranks must pass buffers of identical length.
func (ep *Endpoint) Bcast(p *sim.Proc, buf []byte, root int, comm *Comm) error {
	n := ep.world.size
	if root < 0 || root >= n {
		return fmt.Errorf("%w: bcast root %d", ErrRankRange, root)
	}
	if n == 1 {
		return nil
	}
	// Rotate so the root is virtual rank 0, then walk the binomial tree
	// exactly as MPICH does: receive from the parent at the lowest set
	// bit, then forward to children at descending distances below it.
	vrank := (ep.rank - root + n) % n
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent := (vrank - mask + root) % n
			if _, err := ep.postRecv(buf, parent, tagBcast, comm).Wait(p); err != nil {
				return fmt.Errorf("mpi: bcast recv: %w", err)
			}
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vrank+mask < n {
			child := (vrank + mask + root) % n
			if err := ep.Wait(p, ep.postSend(buf, child, tagBcast, comm)); err != nil {
				return fmt.Errorf("mpi: bcast send: %w", err)
			}
		}
	}
	return nil
}

// Wait waits one request; a small helper to keep collective code readable.
func (ep *Endpoint) Wait(p *sim.Proc, r *Request) error {
	_, err := r.Wait(p)
	return err
}

// Gather collects each rank's contribution (all of identical length) into
// root's out slice, laid out by rank, like MPI_Gather with equal counts.
// Non-root ranks may pass out nil.
func (ep *Endpoint) Gather(p *sim.Proc, contrib []byte, out []byte, root int, comm *Comm) error {
	n := ep.world.size
	if root < 0 || root >= n {
		return fmt.Errorf("%w: gather root %d", ErrRankRange, root)
	}
	sz := len(contrib)
	if ep.rank == root {
		if len(out) < sz*n {
			return fmt.Errorf("%w: gather buffer %d < %d", ErrTruncate, len(out), sz*n)
		}
		copy(out[root*sz:], contrib)
		reqs := make([]*Request, 0, n-1)
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			reqs = append(reqs, ep.postRecv(out[r*sz:(r+1)*sz], r, tagGather, comm))
		}
		return Waitall(p, reqs...)
	}
	return ep.Wait(p, ep.postSend(contrib, root, tagGather, comm))
}

// AllreduceSum sums one float64 across all ranks and returns the total on
// every rank, via a recursive-doubling exchange (power-of-two friendly but
// correct for any size through a ring fallback).
func (ep *Endpoint) AllreduceSum(p *sim.Proc, x float64, comm *Comm) (float64, error) {
	n := ep.world.size
	if n == 1 {
		return x, nil
	}
	// Ring allreduce on a single scalar: n-1 steps, each passing the
	// running partial sum. Simple, deterministic, O(n) latency — fine for
	// the scalar reductions the applications need (residual norms).
	me := ep.rank
	buf := make([]byte, 8)
	total := x
	cur := x
	for step := 0; step < n-1; step++ {
		to := (me + 1) % n
		from := (me - 1 + n) % n
		tag := tagReduce - step
		binary.LittleEndian.PutUint64(buf, math.Float64bits(cur))
		sreq := ep.postSend(buf, to, tag, comm)
		in := make([]byte, 8)
		rreq := ep.postRecv(in, from, tag, comm)
		if _, err := sreq.Wait(p); err != nil {
			return 0, fmt.Errorf("mpi: allreduce step %d: %w", step, err)
		}
		if _, err := rreq.Wait(p); err != nil {
			return 0, fmt.Errorf("mpi: allreduce step %d: %w", step, err)
		}
		cur = math.Float64frombits(binary.LittleEndian.Uint64(in))
		total += cur
	}
	return total, nil
}
