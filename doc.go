// Package repro is a from-scratch Go reproduction of "clMPI: An OpenCL
// Extension for Interoperation with the Message Passing Interface"
// (Takizawa, Sugawara, Hirasawa, Gelado, Kobayashi, Hwu — IPDPS 2013).
//
// The paper's runtime and its entire stack are rebuilt on a deterministic
// virtual-time simulation: an OpenCL-like device runtime (internal/cl), an
// MPI-like message-passing runtime (internal/mpi), a hardware model of the
// paper's two GPU clusters (internal/cluster), the clMPI extension itself
// (internal/clmpi, re-exported as internal/core), and the two evaluation
// applications — the Himeno benchmark (internal/himeno) and a nanopowder
// growth simulation (internal/nanopowder).
//
// The benchmarks in bench_test.go and the cmd/clmpi-* tools regenerate
// every table and figure of the paper's evaluation; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results.
package repro
