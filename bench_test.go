// Benchmarks regenerating the clMPI paper's evaluation (§V). Each paper
// table/figure has a Benchmark* family below; custom metrics carry the
// quantity the paper plots (MB/s, GFLOPS, ms/step). Virtual time makes the
// measured quantities deterministic; b.N only controls how often the
// simulation is repeated for host-side timing.
//
//	go test -bench=. -benchmem
//	go test -bench=Fig8a        # one figure
package repro_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cl"
	"repro/internal/clmpi"
	"repro/internal/cluster"
	"repro/internal/himeno"
	"repro/internal/mpi"
	"repro/internal/nanopowder"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// newP2PRig wires a two-node world with attached contexts and runtimes.
func newP2PRig(sys cluster.System, opts clmpi.Options) (*sim.Engine, *mpi.World, *clmpi.Fabric, []*cl.Context, []*clmpi.Runtime) {
	eng := sim.NewEngine()
	clus := cluster.New(eng, sys, 2)
	world := mpi.NewWorld(clus)
	fab := clmpi.New(world, opts)
	var ctxs []*cl.Context
	var rts []*clmpi.Runtime
	for i := 0; i < 2; i++ {
		ctx := cl.NewContext(cl.NewDevice(eng, clus.Nodes[i]), fmt.Sprintf("ctx%d", i))
		ctxs = append(ctxs, ctx)
		rts = append(rts, fab.Attach(ctx, world.Endpoint(i)))
	}
	return eng, world, fab, ctxs, rts
}

// --- Table I ---------------------------------------------------------------

// BenchmarkTable1SystemSpecs renders the system table (Table I); the metric
// is the render cost, the value is the table itself (printed once).
func BenchmarkTable1SystemSpecs(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.Table1()
	}
	if testing.Verbose() {
		b.Log("\n" + out)
	}
	_ = out
}

// --- Figure 8: point-to-point bandwidth -------------------------------------

func benchP2P(b *testing.B, sys cluster.System, st clmpi.Strategy, block, size int64) {
	b.Helper()
	var bw float64
	for i := 0; i < b.N; i++ {
		var err error
		bw, err = bench.MeasureP2P(sys, st, block, size)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bw/1e6, "MB/s")
}

// fig8Cases is the sweep both Fig8 benchmark families share.
func fig8Cases(b *testing.B, sys cluster.System) {
	b.Helper()
	for _, im := range bench.Fig8Impls() {
		for _, size := range []int64{256 << 10, 4 << 20, 64 << 20} {
			name := fmt.Sprintf("%s/msg=%dKiB", im.Name, size>>10)
			b.Run(name, func(b *testing.B) { benchP2P(b, sys, im.St, im.Block, size) })
		}
	}
}

// BenchmarkFig8a sweeps the transfer implementations on Cichlid (GbE).
func BenchmarkFig8a(b *testing.B) { fig8Cases(b, cluster.Cichlid()) }

// BenchmarkFig8b sweeps the transfer implementations on RICC (InfiniBand).
func BenchmarkFig8b(b *testing.B) { fig8Cases(b, cluster.RICC()) }

// BenchmarkTransferPipeline is the xfer engine's size × strategy grid on both
// preset systems: every registered strategy, including the peer-DMA path that
// skips host staging entirely. The MB/s metric is virtual bandwidth (exact
// and machine-independent); ns/op is the host-side cost of simulating one
// transfer through the staged-pipeline engine. BENCH_xfer.json snapshots
// this grid.
func BenchmarkTransferPipeline(b *testing.B) {
	for _, sys := range []cluster.System{cluster.Cichlid(), cluster.RICC()} {
		for _, st := range []clmpi.Strategy{clmpi.Pinned, clmpi.Mapped, clmpi.Pipelined, clmpi.Peer} {
			var block int64
			if st == clmpi.Pipelined || st == clmpi.Peer {
				block = 1 << 20
			}
			for _, size := range []int64{256 << 10, 4 << 20, 32 << 20} {
				name := fmt.Sprintf("%s/%s/msg=%dKiB", sys.Name, st, size>>10)
				b.Run(name, func(b *testing.B) { benchP2P(b, sys, st, block, size) })
			}
		}
	}
}

// --- Figure 9: Himeno sustained performance ---------------------------------

func benchHimeno(b *testing.B, sys cluster.System, nodes int, impl himeno.Impl) {
	b.Helper()
	var res *himeno.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = himeno.Run(himeno.Config{
			System: sys, Nodes: nodes, Size: himeno.SizeM, Iters: 3,
			Impl: impl, Mode: himeno.OfficialInit,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GFLOPS, "GFLOPS")
	if impl == himeno.Serial && res.CommTime > 0 {
		b.ReportMetric(res.CompTime.Seconds()/res.CommTime.Seconds(), "comp/comm")
	}
}

// BenchmarkFig9a is Himeno M on Cichlid: {1,2,4} nodes × three impls.
func BenchmarkFig9a(b *testing.B) {
	for _, nodes := range []int{1, 2, 4} {
		for _, impl := range []himeno.Impl{himeno.Serial, himeno.HandOpt, himeno.CLMPI} {
			b.Run(fmt.Sprintf("nodes=%d/%s", nodes, impl), func(b *testing.B) {
				benchHimeno(b, cluster.Cichlid(), nodes, impl)
			})
		}
	}
}

// BenchmarkFig9b is Himeno M on RICC up to 64 nodes.
func BenchmarkFig9b(b *testing.B) {
	for _, nodes := range []int{1, 4, 16, 64} {
		for _, impl := range []himeno.Impl{himeno.Serial, himeno.HandOpt, himeno.CLMPI} {
			b.Run(fmt.Sprintf("nodes=%d/%s", nodes, impl), func(b *testing.B) {
				benchHimeno(b, cluster.RICC(), nodes, impl)
			})
		}
	}
}

// --- Figure 10: nanopowder growth simulation --------------------------------

// BenchmarkFig10 compares the baseline and clMPI coefficient distribution
// across the divisors of 40. Bins are reduced from the paper-scale default
// to keep host time low; cmd/clmpi-nanopowder runs the full 42 MB version.
func BenchmarkFig10(b *testing.B) {
	params := nanopowder.Params{Cells: 40, Bins: 128, Steps: 2, SubSteps: 120}
	for _, nodes := range bench.Fig10Nodes() {
		for _, impl := range []nanopowder.Impl{nanopowder.Baseline, nanopowder.CLMPI} {
			b.Run(fmt.Sprintf("nodes=%d/%s", nodes, impl), func(b *testing.B) {
				var res *nanopowder.Result
				for i := 0; i < b.N; i++ {
					var err error
					res, err = nanopowder.Run(nanopowder.Config{
						System: cluster.RICC(), Nodes: nodes, Impl: impl, Params: params,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.StepTime.Seconds()*1e3, "ms/step")
			})
		}
	}
}

// --- Figure 4: scheduling timelines ------------------------------------------

// BenchmarkFig4Traces regenerates the three timeline panels; the metric is
// the per-iteration virtual time of the traced two-node run, which is what
// the panels visualize.
func BenchmarkFig4Traces(b *testing.B) {
	for _, impl := range []himeno.Impl{himeno.Serial, himeno.HandOpt, himeno.CLMPI} {
		b.Run(impl.String(), func(b *testing.B) {
			var res *himeno.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = himeno.Run(himeno.Config{
					System: cluster.Cichlid(), Nodes: 2, Size: himeno.SizeS, Iters: 2,
					Impl: impl, Mode: himeno.OfficialInit,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Elapsed.Seconds()*1e3/2, "ms/iter")
		})
	}
}

// --- Observability: overlap ratio and link utilization ------------------------

// BenchmarkObservability runs instrumented two-node Himeno runs and reports
// the observability layer's derived metrics: the fraction of communication
// time hidden under kernels (overlap) and the peak NIC utilization. The
// clMPI implementation should overlap substantially; the serial one not at
// all.
func BenchmarkObservability(b *testing.B) {
	for _, impl := range []himeno.Impl{himeno.Serial, himeno.HandOpt, himeno.CLMPI} {
		b.Run(impl.String(), func(b *testing.B) {
			var overlap, nicUtil float64
			for i := 0; i < b.N; i++ {
				trc, _, err := bench.TraceHimeno(cluster.Cichlid(), impl, himeno.SizeS, 2, 2)
				if err != nil {
					b.Fatal(err)
				}
				overlap, nicUtil = bench.ObservedOverlap(trc)
			}
			b.ReportMetric(overlap, "overlap")
			b.ReportMetric(100*nicUtil, "nic_util_%")
		})
	}
}

// --- Ablations (design decisions called out in DESIGN.md) --------------------

// BenchmarkAblationAutoVsFixed quantifies §V-B's automatic selection: Auto
// must track the best fixed strategy at both a small and a large message on
// both systems.
func BenchmarkAblationAutoVsFixed(b *testing.B) {
	for name, sys := range cluster.Systems() {
		for _, size := range []int64{128 << 10, 32 << 20} {
			b.Run(fmt.Sprintf("%s/msg=%dKiB", name, size>>10), func(b *testing.B) {
				var auto, best float64
				for i := 0; i < b.N; i++ {
					var err error
					auto, err = bench.MeasureP2P(sys, clmpi.Auto, 0, size)
					if err != nil {
						b.Fatal(err)
					}
					best = 0
					for _, st := range []clmpi.Strategy{clmpi.Pinned, clmpi.Mapped, clmpi.Pipelined} {
						bw, err := bench.MeasureP2P(sys, st, 0, size)
						if err != nil {
							b.Fatal(err)
						}
						if bw > best {
							best = bw
						}
					}
				}
				b.ReportMetric(auto/1e6, "auto_MB/s")
				b.ReportMetric(auto/best, "auto/best")
			})
		}
	}
}

// BenchmarkAblationRingDepth sweeps the pipelined staging ring depth: depth
// 1 removes all overlap (each block must finish both hops before the next
// starts), deeper rings approach the ideal pipeline.
func BenchmarkAblationRingDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 3, 6} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				eng, world, fab, ctxs, rts := newP2PRig(cluster.RICC(), clmpi.Options{
					Strategy: clmpi.Pipelined, PipelineBlock: 1 << 20, RingBuffers: depth,
				})
				const size = 32 << 20
				world.LaunchRanks("ring", func(p *sim.Proc, ep *mpi.Endpoint) {
					q := ctxs[ep.Rank()].NewQueue("q")
					buf := ctxs[ep.Rank()].MustCreateBuffer("b", size)
					if ep.Rank() == 0 {
						start := p.Now()
						if _, err := rts[0].EnqueueSendBuffer(p, q, buf, true, 0, size, 1, 0, world.Comm(), nil); err != nil {
							b.Error(err)
							return
						}
						elapsed = p.Now().Sub(start)
					} else {
						if _, err := rts[1].EnqueueRecvBuffer(p, q, buf, true, 0, size, 0, 0, world.Comm(), nil); err != nil {
							b.Error(err)
						}
					}
				})
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				_ = fab
			}
			b.ReportMetric(float64(32<<20)/elapsed.Seconds()/1e6, "MB/s")
		})
	}
}

// BenchmarkDESEngine measures the simulation kernel itself: virtual events
// processed per host second, the cost of the substrate everything above
// runs on.
func BenchmarkDESEngine(b *testing.B) {
	const procs, wakeups = 64, 100
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		for j := 0; j < procs; j++ {
			eng.Spawn("p", func(p *sim.Proc) {
				for k := 0; k < wakeups; k++ {
					p.Sleep(time.Microsecond)
				}
			})
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(procs*wakeups), "events/op")
}

// BenchmarkEngineThroughput measures raw scheduler throughput in events per
// host second across the hot-path shapes: timer-driven sleeps (the timer
// cache), zero-duration yields (the same-instant fast path), and contended
// synchronization (ready-ring churn). allocs/op is the per-event allocation
// bill — the number the scheduler fast paths exist to shrink.
func BenchmarkEngineThroughput(b *testing.B) {
	b.Run("timers", func(b *testing.B) {
		const procs, wakeups = 64, 100
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := sim.NewEngine()
			for j := 0; j < procs; j++ {
				eng.Spawn("p", func(p *sim.Proc) {
					for k := 0; k < wakeups; k++ {
						p.Sleep(time.Microsecond)
					}
				})
			}
			if err := eng.Run(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(procs*wakeups)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("yields", func(b *testing.B) {
		const procs, yields = 8, 1000
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := sim.NewEngine()
			for j := 0; j < procs; j++ {
				eng.Spawn("y", func(p *sim.Proc) {
					for k := 0; k < yields; k++ {
						p.Sleep(0)
					}
					p.Sleep(time.Microsecond) // let every proc take a turn
				})
			}
			if err := eng.Run(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(procs*yields)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("mutex", func(b *testing.B) {
		const procs, rounds = 16, 100
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := sim.NewEngine()
			mu := sim.NewMutex(eng, "m")
			for j := 0; j < procs; j++ {
				eng.Spawn("c", func(p *sim.Proc) {
					for k := 0; k < rounds; k++ {
						mu.Lock(p)
						p.Sleep(time.Nanosecond)
						mu.Unlock(p)
					}
				})
			}
			if err := eng.Run(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(procs*rounds)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
}

// BenchmarkSweepSpeedup runs the same Fig9-style grid serially and through
// the parallel sweep pool, reporting the wall-clock ratio. On a single-core
// host the ratio is ~1; on an N-core host it should approach min(N, grid).
func BenchmarkSweepSpeedup(b *testing.B) {
	grid := func(workers int) {
		_, err := sweep.MapN(workers, 8, func(i int) (float64, error) {
			res, err := himeno.Run(himeno.Config{
				System: cluster.Cichlid(), Nodes: 1 + i%4, Size: himeno.SizeXS, Iters: 2,
				Impl: himeno.CLMPI, Mode: himeno.OfficialInit,
			})
			if err != nil {
				return 0, err
			}
			return res.GFLOPS, nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	var serial, parallel time.Duration
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			grid(1)
		}
		serial = b.Elapsed() / time.Duration(b.N)
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			grid(sweep.Workers()) // default width: all host cores
		}
		parallel = b.Elapsed() / time.Duration(b.N)
	})
	if serial > 0 && parallel > 0 {
		b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
	}
}

// --- Simulation-as-a-service (internal/serve) --------------------------------

// serveBurst fires one burst of concurrent jobs at a running service over
// HTTP (?wait=1, so a request's latency is the job's completion latency) and
// fails the benchmark on any non-done outcome. Job j of a burst is a
// distinct one-point sweep (bodyFor builds it), so a cold burst is all cache
// misses and a repeat of the same burst is all hits.
func serveBurst(b *testing.B, ts *httptest.Server, jobs int, bodyFor func(j int) string) {
	b.Helper()
	var wg sync.WaitGroup
	errc := make(chan error, jobs)
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := bodyFor(j)
			resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			defer resp.Body.Close()
			var st serve.JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				errc <- err
				return
			}
			if resp.StatusCode != http.StatusOK || st.Status != serve.StatusDone {
				errc <- fmt.Errorf("job ended %q (http %d): %s", st.Status, resp.StatusCode, st.Error)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		b.Fatal(err)
	}
}

// BenchmarkServe is the service's load-test baseline (BENCH_serve.json; the
// standalone twin is cmd/clmpi-loadgen against cmd/clmpi-serve): 1000
// concurrent jobs per op through the full HTTP path. cold measures
// simulate-and-cache throughput on a fresh daemon; warm repeats an identical
// burst, so every job is a content-address hit and the number is pure
// service overhead — the regime a popular what-if service converges to.
func BenchmarkServe(b *testing.B) {
	const burst = 1000
	p2pBody := func(j int) string {
		return fmt.Sprintf(`{"system":"cichlid","strategies":["pinned"],"sizes":[%d]}`, 64<<10+j*1024)
	}
	// The matchscale cells exercise the modern-regime grid: one-point
	// matchscale jobs on the Hopper preset (400G NDR fabric), distinct rank
	// counts per job. Smaller burst — each point is a whole dense-exchange
	// simulation, not a single p2p transfer.
	const msBurst = 100
	msBody := func(j int) string {
		return fmt.Sprintf(`{"system":"hopper","workload":"matchscale","ranks":[%d]}`, 16+j)
	}
	newServer := func(b *testing.B) (*serve.Manager, *httptest.Server) {
		b.Helper()
		mgr, err := serve.NewManager(serve.Options{CacheEntries: 2 * burst})
		if err != nil {
			b.Fatal(err)
		}
		return mgr, httptest.NewServer(serve.NewServer(mgr))
	}
	cold := func(name string, jobs int, bodyFor func(j int) string) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				_, ts := newServer(b)
				b.StartTimer()
				serveBurst(b, ts, jobs, bodyFor)
				b.StopTimer()
				ts.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
	warm := func(name string, jobs int, bodyFor func(j int) string) {
		b.Run(name, func(b *testing.B) {
			mgr, ts := newServer(b)
			defer ts.Close()
			serveBurst(b, ts, jobs, bodyFor) // prefill the cache
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				serveBurst(b, ts, jobs, bodyFor)
			}
			b.StopTimer()
			if hits := mgr.Counter("clmpi_serve_cache_hits_total"); hits < float64(jobs*b.N) {
				b.Fatalf("warm burst missed the cache: %v hits, want >= %d", hits, jobs*b.N)
			}
			b.ReportMetric(float64(jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
	cold(fmt.Sprintf("burst=%d/cold", burst), burst, p2pBody)
	warm(fmt.Sprintf("burst=%d/warm", burst), burst, p2pBody)
	cold(fmt.Sprintf("matchscale=hopper/burst=%d/cold", msBurst), msBurst, msBody)
	warm(fmt.Sprintf("matchscale=hopper/burst=%d/warm", msBurst), msBurst, msBody)
}

// --- Future-work features (§VI) ---------------------------------------------

// BenchmarkFileCheckpoint measures the §VI file-I/O commands: a Himeno run
// checkpointing every other iteration vs the write time it hides.
func BenchmarkFileCheckpoint(b *testing.B) {
	var res *himeno.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = himeno.Run(himeno.Config{
			System: cluster.RICC(), Nodes: 2, Size: himeno.SizeS, Iters: 4,
			Impl: himeno.CLMPI, Mode: himeno.OfficialInit, CheckpointEvery: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Elapsed.Seconds()*1e3, "ms/run")
}

// BenchmarkIbcastOverlap measures the §VI non-blocking collective: time for
// a broadcast fully overlapped with computation (ideal: max of the two).
func BenchmarkIbcastOverlap(b *testing.B) {
	const size = 16 << 20
	const work = 20 * time.Millisecond
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		world := mpi.NewWorld(cluster.New(eng, cluster.RICC(), 4))
		world.LaunchRanks("bcast", func(p *sim.Proc, ep *mpi.Endpoint) {
			buf := make([]byte, size)
			req := ep.Ibcast(p, buf, 0, world.Comm())
			p.Sleep(work)
			if _, err := req.Wait(p); err != nil {
				b.Error(err)
			}
			if ep.Rank() == 0 {
				elapsed = p.Now().Duration()
			}
		})
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(elapsed.Seconds()*1e3, "ms")
}

// BenchmarkGPUAwareVsCLMPI isolates the §II comparison at the Fig. 9(a)
// operating point.
func BenchmarkGPUAwareVsCLMPI(b *testing.B) {
	for _, impl := range []himeno.Impl{himeno.HandOpt, himeno.GPUAware, himeno.CLMPI, himeno.CLMPIOutOfOrder} {
		b.Run(impl.String(), func(b *testing.B) {
			var res *himeno.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = himeno.Run(himeno.Config{
					System: cluster.Cichlid(), Nodes: 4, Size: himeno.SizeM, Iters: 3,
					Impl: impl, Mode: himeno.OfficialInit,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.GFLOPS, "GFLOPS")
		})
	}
}
