// Command clmpi-loadgen load-tests a running clmpi-serve daemon: it fires
// bursts of concurrent sweep jobs, measures completion latency and
// throughput, verifies that every burst after the first returns
// byte-identical results served from the content-addressed cache, and writes
// a JSON summary (the serve-smoke CI artifact; BENCH_serve.json's grid is
// the in-process BenchmarkServe twin of this measurement).
//
// Usage:
//
//	clmpi-serve -addr 127.0.0.1:8177 &
//	clmpi-loadgen -addr 127.0.0.1:8177 -jobs 1000 -bursts 2 -expect-cached -out serve-load.json
//	clmpi-loadgen -addr 127.0.0.1:8177 -spec-file examples/systems/hopper.json -bursts 2 -expect-cached
package main

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8177", "clmpi-serve address")
	jobs := flag.Int("jobs", 1000, "jobs per burst")
	concurrency := flag.Int("concurrency", 0, "in-flight request cap (0 = all jobs at once)")
	bursts := flag.Int("bursts", 2, "number of identical bursts (burst 2+ should be pure cache hits)")
	system := flag.String("system", "cichlid", "system preset submitted with every job")
	specFile := flag.String("spec-file", "", "submit this system spec file inline as system_spec with every job instead of a preset name")
	spread := flag.Int("spread", 0, "number of distinct job configs per burst (0 = every job distinct)")
	sizeBase := flag.Int64("size-base", 64<<10, "base p2p message size in bytes")
	expectCached := flag.Bool("expect-cached", false, "exit non-zero unless bursts after the first are fully served from cache")
	out := flag.String("out", "", "write the JSON summary to this file (also printed)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request timeout")
	flag.Parse()

	// The spec file rides along verbatim inside every job body; the daemon
	// canonicalizes it, so formatting differences cannot defeat the cache.
	var inlineSpec []byte
	if *specFile != "" {
		raw, err := os.ReadFile(*specFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-loadgen: %v\n", err)
			os.Exit(2)
		}
		if !json.Valid(raw) {
			fmt.Fprintf(os.Stderr, "clmpi-loadgen: %s: not valid JSON\n", *specFile)
			os.Exit(2)
		}
		inlineSpec = raw
	}

	client := &http.Client{Timeout: *timeout}
	base := "http://" + *addr
	if _, err := client.Get(base + "/healthz"); err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-loadgen: daemon not reachable: %v\n", err)
		os.Exit(1)
	}

	summary := Summary{Addr: *addr, Jobs: *jobs, Bursts: *bursts}
	// resultSums[i] is the digest of job i's result from the first burst;
	// later bursts must reproduce it byte for byte.
	resultSums := make([][32]byte, *jobs)
	ok := true
	for b := 0; b < *bursts; b++ {
		hitsBefore := scrapeMetric(client, base, "clmpi_serve_cache_hits_total")
		bs, sums := runBurst(client, base, *jobs, *concurrency, *system, inlineSpec, *spread, *sizeBase)
		bs.CacheHits = scrapeMetric(client, base, "clmpi_serve_cache_hits_total") - hitsBefore
		bs.CacheHitRatio = scrapeMetric(client, base, "clmpi_serve_cache_hit_ratio")
		for i, sum := range sums {
			if b == 0 {
				resultSums[i] = sum
			} else if sum != resultSums[i] {
				bs.Mismatches++
			}
		}
		summary.Results = append(summary.Results, bs)
		if bs.Errors > 0 || bs.Mismatches > 0 {
			ok = false
		}
		if b > 0 && *expectCached && bs.CacheHits < float64(*jobs) {
			fmt.Fprintf(os.Stderr, "clmpi-loadgen: burst %d: only %.0f/%d jobs served from cache\n", b+1, bs.CacheHits, *jobs)
			ok = false
		}
	}

	data, _ := json.MarshalIndent(summary, "", "  ")
	data = append(data, '\n')
	os.Stdout.Write(data)
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-loadgen: %v\n", err)
			os.Exit(1)
		}
	}
	if !ok {
		os.Exit(2)
	}
}

// Summary is the emitted document.
type Summary struct {
	Addr    string  `json:"addr"`
	Jobs    int     `json:"jobs_per_burst"`
	Bursts  int     `json:"bursts"`
	Results []Burst `json:"results"`
}

// Burst aggregates one burst's outcome. Latency quantiles come from a
// fixed-bucket obs.Histogram — constant memory however large the burst, at
// the price of bucket-resolution quantiles (each quantile reads as its
// bucket's upper bound, clamped to the observed maximum). CacheHits is the
// burst's delta of the daemon's clmpi_serve_cache_hits_total counter;
// CacheHitRatio is the daemon's lifetime ratio gauge after the burst — both
// scraped from the Prometheus /metricz exposition.
type Burst struct {
	Errors        int     `json:"errors"`
	Mismatches    int     `json:"result_mismatches"`
	Seconds       float64 `json:"seconds"`
	JobsPerSec    float64 `json:"jobs_per_s"`
	P50ms         float64 `json:"p50_ms"`
	P90ms         float64 `json:"p90_ms"`
	P99ms         float64 `json:"p99_ms"`
	P999ms        float64 `json:"p99_9_ms"`
	MaxMs         float64 `json:"max_ms"`
	CacheHits     float64 `json:"cache_hits"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
}

// jobBody builds job i's submission. With spread > 0 configurations repeat
// every spread jobs (so one burst already exercises the cache); with
// spread 0 every job in a burst is a distinct configuration. A non-nil
// inlineSpec replaces the preset name with an inline system_spec document.
func jobBody(i, spread int, system string, inlineSpec []byte, sizeBase int64) []byte {
	k := i
	if spread > 0 {
		k = i % spread
	}
	size := sizeBase + int64(k)*1024
	if inlineSpec != nil {
		return fmt.Appendf(nil, `{"system_spec":%s,"workload":"p2p","strategies":["pinned"],"sizes":[%d]}`, inlineSpec, size)
	}
	return fmt.Appendf(nil, `{"system":%q,"workload":"p2p","strategies":["pinned"],"sizes":[%d]}`, system, size)
}

// runBurst submits the burst's jobs concurrently and collects latency and
// result digests (zero digest on error).
func runBurst(client *http.Client, base string, jobs, concurrency int, system string, inlineSpec []byte, spread int, sizeBase int64) (Burst, [][32]byte) {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs int
	)
	lat := obs.NewHistogram(obs.DefaultLatencyBounds)
	sums := make([][32]byte, jobs)
	sem := make(chan struct{}, max(concurrency, 1))
	useSem := concurrency > 0
	start := time.Now()
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if useSem {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			t0 := time.Now()
			raw, err := submitAndWait(client, base, jobBody(i, spread, system, inlineSpec, sizeBase))
			elapsed := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs++
				return
			}
			sums[i] = sha256.Sum256(raw)
			lat.Observe(elapsed.Seconds())
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	bs := Burst{
		Errors:  errs,
		Seconds: elapsed.Seconds(),
	}
	if elapsed > 0 {
		bs.JobsPerSec = float64(jobs-errs) / elapsed.Seconds()
	}
	bs.P50ms = lat.Quantile(0.50) * 1e3
	bs.P90ms = lat.Quantile(0.90) * 1e3
	bs.P99ms = lat.Quantile(0.99) * 1e3
	bs.P999ms = lat.Quantile(0.999) * 1e3
	bs.MaxMs = lat.Max() * 1e3
	return bs, sums
}

// submitAndWait posts one job with ?wait=1 and returns the raw result field.
func submitAndWait(client *http.Client, base string, body []byte) (json.RawMessage, error) {
	resp, err := client.Post(base+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var status struct {
		Status string          `json:"status"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK || status.Status != "done" {
		return nil, fmt.Errorf("job ended %q (http %d): %s", status.Status, resp.StatusCode, status.Error)
	}
	return status.Result, nil
}

// scrapeMetric reads one unlabeled sample from the daemon's Prometheus
// /metricz exposition (0 if absent or unreachable).
func scrapeMetric(client *http.Client, base, name string) float64 {
	resp, err := client.Get(base + "/metricz")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, _ := strconv.ParseFloat(fields[1], 64)
			return v
		}
	}
	return 0
}
