// Command clmpi-calib turns measured microbenchmark numbers into a system
// spec: it fits the cost-model parameters (sustained PCIe and network
// bandwidths, setup costs, DMA and wire latencies, message overhead) from a
// measurements JSON file and writes the fitted system as a canonical
// clmpi-system/v1 spec file, ready for every -system flag in this repo.
//
// The identity fields the fitter cannot observe (names, models, node count,
// memory sizes, software versions) come from a base system: a preset name
// or an existing spec file.
//
// With -synth it runs the other direction: it synthesizes the exact
// measurement set the fitter expects from a system's cost model, as a
// template to fill in with real numbers (and as a self-check — fitting a
// synthesized set recovers the system it came from).
//
// Usage:
//
//	clmpi-calib -synth -base cichlid -o measurements.json   # template
//	clmpi-calib -base cichlid -m measured.json -o lab.json  # fit
//	clmpi-calib -base lab.json -m measured.json             # spec to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/cluster/calib"
)

func main() {
	base := flag.String("base", "", "base system for identity fields: a preset name or a spec file path (required)")
	measured := flag.String("m", "", "measurements JSON to fit (required unless -synth)")
	synth := flag.Bool("synth", false, "synthesize the measurement set from the base system's cost model instead of fitting")
	out := flag.String("o", "", "output file (default: stdout)")
	flag.Parse()

	if *base == "" {
		fmt.Fprintln(os.Stderr, "clmpi-calib: -base is required (a preset name or a spec file path)")
		os.Exit(2)
	}
	sys, err := cluster.Resolve(*base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-calib: %v\n", err)
		os.Exit(2)
	}

	var data []byte
	if *synth {
		m := calib.Synthesize(sys)
		data, err = json.MarshalIndent(m, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-calib: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
	} else {
		if *measured == "" {
			fmt.Fprintln(os.Stderr, "clmpi-calib: -m measurements.json is required (or pass -synth to generate a template)")
			os.Exit(2)
		}
		raw, err := os.ReadFile(*measured)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-calib: %v\n", err)
			os.Exit(2)
		}
		var m calib.Measurements
		if err := json.Unmarshal(raw, &m); err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-calib: %s: %v\n", *measured, err)
			os.Exit(2)
		}
		fitted, err := calib.Fit(sys, m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-calib: %v\n", err)
			os.Exit(1)
		}
		data, err = cluster.EncodeSpec(fitted)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-calib: %v\n", err)
			os.Exit(1)
		}
	}

	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-calib: %v\n", err)
		os.Exit(1)
	}
	what := "spec"
	if *synth {
		what = "measurement template"
	}
	fmt.Printf("wrote %s %s (base %s)\n", what, *out, sys.Name)
}
