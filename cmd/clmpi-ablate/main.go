// Command clmpi-ablate runs the reproduction's ablation studies — the
// design decisions DESIGN.md calls out, isolated one at a time:
//
//   - strategy: the §V-B automatic selection against each fixed strategy
//     and against the measurement-based tuner (clmpi.Tune);
//   - ring: the pipelined staging ring depth (overlap ablation);
//   - gpuaware: the §II comparison — GPU-aware MPI transfers (optimized
//     staging, host-driven schedule) between the hand-optimized and clMPI
//     Himeno implementations;
//   - eager: the MPI eager/rendezvous threshold's latency effect;
//   - ipoib: the §V-A thread-safety tax — RICC's IPoIB fabric vs the
//     counterfactual native-verbs configuration.
//
// Usage:
//
//	clmpi-ablate            # all studies
//	clmpi-ablate -only ring
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/cl"
	"repro/internal/clmpi"
	"repro/internal/cluster"
	"repro/internal/himeno"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	only := flag.String("only", "", "run a single study: strategy, ring, gpuaware or eager")
	system := flag.String("system", "", "run the strategy/ring/eager studies on this system (preset name or spec file path) instead of the paper defaults")
	parallel := flag.Int("parallel", 0, "sweep worker pool size (0 = all host cores, 1 = serial)")
	flag.Parse()
	sweep.SetWorkers(*parallel)
	if *system != "" {
		sys, err := cluster.Resolve(*system)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-ablate: %v\n", err)
			os.Exit(2)
		}
		studySystem = &sys
	}
	studies := map[string]func(){
		"strategy": strategyStudy,
		"ring":     ringStudy,
		"gpuaware": gpuAwareStudy,
		"eager":    eagerStudy,
		"ipoib":    ipoibStudy,
	}
	if *only != "" {
		fn, ok := studies[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "clmpi-ablate: unknown study %q\n", *only)
			os.Exit(2)
		}
		fn()
		return
	}
	for _, name := range []string{"strategy", "ring", "gpuaware", "eager", "ipoib"} {
		studies[name]()
		fmt.Println()
	}
}

// studySystem, when non-nil, replaces the paper-default systems in the
// strategy, ring and eager studies. The gpuaware study stays on Cichlid
// (it reproduces a §II comparison tied to that machine) and ipoib stays a
// RICC-vs-RICCVerbs comparison by definition.
var studySystem *cluster.System

// studyOr returns the -system override if one was given, else the study's
// paper-default system.
func studyOr(def func() cluster.System) cluster.System {
	if studySystem != nil {
		return *studySystem
	}
	return def()
}

// ipoibStudy quantifies the thread-safety tax of §V-A: the paper ran Open
// MPI over IPoIB because MPI_THREAD_MULTIPLE was not safe over native
// verbs. RICCVerbs is the counterfactual fabric.
func ipoibStudy() {
	fmt.Println("Ablation: the IPoIB thread-safety tax (§V-A) — RICC vs counterfactual native verbs")
	fmt.Println()
	headers := []string{"fabric", "p2p 32MiB (pipelined) MB/s", "Himeno M 16 nodes clMPI GF"}
	var rows [][]string
	for _, sys := range []cluster.System{cluster.RICC(), cluster.RICCVerbs()} {
		bw, err := bench.MeasureP2P(sys, clmpi.Pipelined, 1<<20, 32<<20)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-ablate: %v\n", err)
			os.Exit(1)
		}
		res, err := himeno.Run(himeno.Config{
			System: sys, Nodes: 16, Size: himeno.SizeM, Iters: 4,
			Impl: himeno.CLMPI, Mode: himeno.OfficialInit,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-ablate: %v\n", err)
			os.Exit(1)
		}
		rows = append(rows, []string{sys.NIC.Model, fmt.Sprintf("%.0f", bw/1e6), fmt.Sprintf("%.2f", res.GFLOPS)})
	}
	fmt.Print(bench.FormatTable(headers, rows))
}

func strategyStudy() {
	fmt.Println("Ablation: automatic strategy selection (§V-B) vs fixed strategies vs measured tuning")
	fmt.Println()
	headers := []string{"system", "msg", "auto", "pinned", "mapped", "pipelined", "peer", "tuned", "auto/best", "tuned/best"}
	var rows [][]string
	systems := []cluster.System{cluster.Cichlid(), cluster.RICC()}
	if studySystem != nil {
		systems = []cluster.System{*studySystem}
	}
	for _, sys := range systems {
		tunedOpts, err := clmpi.Tune(sys)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-ablate: %v\n", err)
			os.Exit(1)
		}
		// The (size, strategy) grid plus the tuned column is 18 independent
		// measurements per system: fan it out over the sweep pool and read
		// the indexed results back in table order.
		sizes := []int64{64 << 10, 1 << 20, 32 << 20}
		sts := []clmpi.Strategy{clmpi.Auto, clmpi.Pinned, clmpi.Mapped, clmpi.Pipelined, clmpi.Peer}
		cols := len(sts) + 1
		grid, err := sweep.Map(len(sizes)*cols, func(i int) (float64, error) {
			size, k := sizes[i/cols], i%cols
			if k == len(sts) {
				return measureOn(sys, tunedOpts, size), nil
			}
			return bench.MeasureP2P(sys, sts[k], 0, size)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-ablate: %v\n", err)
			os.Exit(1)
		}
		for si, size := range sizes {
			row := []string{sys.Name, fmt.Sprintf("%dKiB", size>>10)}
			vals := grid[si*cols : (si+1)*cols]
			best := 0.0
			for k := 1; k < len(sts); k++ { // fixed strategies only (not auto)
				if vals[k] > best {
					best = vals[k]
				}
			}
			tuned := vals[len(sts)]
			for _, v := range vals {
				row = append(row, fmt.Sprintf("%.0f", v/1e6))
			}
			row = append(row, fmt.Sprintf("%.2f", vals[0]/best), fmt.Sprintf("%.2f", tuned/best))
			rows = append(rows, row)
		}
	}
	fmt.Print(bench.FormatTable(headers, rows))
	fmt.Println("\n'tuned' is clmpi.Tune: measured per-size selection instead of the paper's static rule.")
}

func ringStudy() {
	fmt.Printf("Ablation: pipelined staging ring depth (32 MiB message, %s)\n", studyOr(cluster.RICC).Name)
	fmt.Println()
	headers := []string{"ring buffers", "MB/s"}
	var rows [][]string
	for _, depth := range []int{1, 2, 3, 4, 8} {
		bw := measureWithOptions(clmpi.Options{Strategy: clmpi.Pipelined, PipelineBlock: 1 << 20, RingBuffers: depth}, 32<<20)
		rows = append(rows, []string{fmt.Sprintf("%d", depth), fmt.Sprintf("%.0f", bw/1e6)})
	}
	fmt.Print(bench.FormatTable(headers, rows))
	fmt.Println("\ndepth 1 removes overlap entirely; two buffers already saturate a two-hop pipeline.")
}

func gpuAwareStudy() {
	fmt.Println("Ablation: transfer selection vs scheduling (Himeno S, 4 Cichlid nodes)")
	fmt.Println()
	headers := []string{"implementation", "GFLOPS", "what it isolates"}
	notes := map[himeno.Impl]string{
		himeno.HandOpt:  "manual overlap, per-transfer pinned staging",
		himeno.GPUAware: "optimized transfers, host-driven schedule (§II)",
		himeno.CLMPI:    "optimized transfers + event-driven schedule",
	}
	var rows [][]string
	for _, impl := range []himeno.Impl{himeno.HandOpt, himeno.GPUAware, himeno.CLMPI} {
		res, err := himeno.Run(himeno.Config{
			System: cluster.Cichlid(), Nodes: 4, Size: himeno.SizeS, Iters: 4,
			Impl: impl, Mode: himeno.OfficialInit,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-ablate: %v\n", err)
			os.Exit(1)
		}
		rows = append(rows, []string{impl.String(), fmt.Sprintf("%.2f", res.GFLOPS), notes[impl]})
	}
	fmt.Print(bench.FormatTable(headers, rows))
}

func eagerStudy() {
	fmt.Printf("Ablation: eager vs rendezvous latency (%s, host-to-host)\n", studyOr(cluster.RICC).Name)
	fmt.Println()
	headers := []string{"msg bytes", "protocol", "one-way latency"}
	var rows [][]string
	for _, size := range []int{1 << 10, mpi.EagerThreshold, mpi.EagerThreshold + 1, 1 << 20} {
		lat := measureLatency(size)
		proto := "eager"
		if size > mpi.EagerThreshold {
			proto = "rendezvous"
		}
		rows = append(rows, []string{fmt.Sprintf("%d", size), proto, lat.String()})
	}
	fmt.Print(bench.FormatTable(headers, rows))
}

// measureWithOptions runs a single device→device transfer with the options.
func measureWithOptions(opts clmpi.Options, size int64) float64 {
	return measureOn(studyOr(cluster.RICC), opts, size)
}

// measureOn runs a single device→device transfer on the given system.
func measureOn(system cluster.System, opts clmpi.Options, size int64) float64 {
	eng := sim.NewEngine()
	clus := cluster.New(eng, system, 2)
	world := mpi.NewWorld(clus)
	fab := clmpi.New(world, opts)
	var elapsed time.Duration
	world.LaunchRanks("abl", func(p *sim.Proc, ep *mpi.Endpoint) {
		ctx := cl.NewContext(cl.NewDevice(eng, ep.Node()), "abl")
		rt := fab.Attach(ctx, ep)
		q := ctx.NewQueue("q")
		buf := ctx.MustCreateBuffer("b", size)
		defer buf.Release() // recycle the block across ablation points
		if ep.Rank() == 0 {
			start := p.Now()
			if _, err := rt.EnqueueSendBuffer(p, q, buf, true, 0, size, 1, 0, world.Comm(), nil); err != nil {
				fmt.Fprintf(os.Stderr, "clmpi-ablate: %v\n", err)
				os.Exit(1)
			}
			elapsed = p.Now().Sub(start)
		} else if _, err := rt.EnqueueRecvBuffer(p, q, buf, true, 0, size, 0, 0, world.Comm(), nil); err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-ablate: %v\n", err)
			os.Exit(1)
		}
	})
	if err := eng.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-ablate: %v\n", err)
		os.Exit(1)
	}
	return float64(size) / elapsed.Seconds()
}

// measureLatency times a single host-to-host message end to end.
func measureLatency(size int) time.Duration {
	eng := sim.NewEngine()
	world := mpi.NewWorld(cluster.New(eng, studyOr(cluster.RICC), 2))
	var arrived time.Duration
	world.LaunchRanks("lat", func(p *sim.Proc, ep *mpi.Endpoint) {
		buf := make([]byte, size)
		if ep.Rank() == 0 {
			ep.Send(p, buf, 1, 0, mpi.Bytes, world.Comm())
		} else {
			ep.Recv(p, buf, 0, 0, mpi.Bytes, world.Comm())
			arrived = p.Now().Duration()
		}
	})
	if err := eng.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-ablate: %v\n", err)
		os.Exit(1)
	}
	return arrived
}
