// Command clmpi-bw regenerates Figure 8 of the clMPI paper: the sustained
// point-to-point bandwidth between two remote devices for the pinned,
// mapped, and pipelined(N) data-transfer implementations, swept over
// message sizes, on either simulated system.
//
// With -trace and/or -metrics, the tool additionally runs one fully
// instrumented transfer (-strategy, -msg) and exports its unified event
// stream — command queues, MPI protocol phases, link/NIC/PCIe occupancy —
// as Chrome trace_event JSON and/or its metrics registry.
//
// Usage:
//
//	clmpi-bw -system cichlid
//	clmpi-bw -system ricc
//	clmpi-bw -system ricc -strategy pipelined -msg 33554432 -trace out.json -metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/clmpi"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/trace/critpath"
)

func main() {
	system := flag.String("system", "ricc", "system to simulate: a preset name (cichlid, ricc, ricc-verbs, hopper) or a spec file path")
	traceOut := flag.String("trace", "", "write one traced transfer as Chrome trace_event JSON to this file")
	metrics := flag.Bool("metrics", false, "print the traced transfer's metrics registry")
	strategyName := flag.String("strategy", "pipelined", "strategy of the traced transfer: auto, pinned, mapped, pipelined, pipelined(N) or peer")
	msg := flag.Int64("msg", 4<<20, "message size in bytes of the traced transfer")
	critReport := flag.Bool("critpath", false, "print the traced transfer's critical-path analysis (attribution + what-if bounds)")
	flame := flag.String("flame", "", "write the traced transfer's critical path as folded flamegraph stacks to this file")
	ranks := flag.String("ranks", "", "also run the large-world matching scaling sweep at these comma-separated rank counts (e.g. 64,128,256,512)")
	outstanding := flag.Int("outstanding", 32, "outstanding sends and receives per rank in the -ranks sweep")
	wild := flag.Int("wild", 25, "percentage of wildcard receives in the -ranks sweep")
	parallelWorld := flag.Int("parallel-world", 0, "run each -ranks point on a partitioned engine with this many partitions and host workers (0 = the serial engine)")
	obsReport := flag.Bool("obs-report", false, "with -parallel-world, attribute each shard's host wall time to simulate/stall/advert/merge and print the report after the -ranks sweep")
	parallel := flag.Int("parallel", 0, "sweep worker pool size (0 = all host cores, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()
	sweep.SetWorkers(*parallel)
	stopProfiling, perr := profiling.Start(*cpuprofile, *memprofile)
	if perr != nil {
		fmt.Fprintf(os.Stderr, "clmpi-bw: %v\n", perr)
		os.Exit(1)
	}
	defer stopProfiling()
	sys, err := cluster.Resolve(*system)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-bw: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("Figure 8(%s): point-to-point sustained bandwidth on %s\n\n",
		panelLabel(sys.Name), sys.Name)
	headers, rows, err := bench.Fig8(sys)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-bw: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(bench.FormatTable(headers, rows))

	if *ranks != "" {
		counts, err := parseRanks(*ranks)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-bw: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("\nLarge-world matching scaling on %s (%d outstanding ops/rank, %d%% wildcards)\n\n",
			sys.Name, *outstanding, *wild)
		var sm *obs.Sim
		if *obsReport && *parallelWorld > 1 {
			sm = obs.NewSim(obs.NewRegistry(), obs.NewRecorder(*parallelWorld, 0))
			sm.DeadlockDump = os.Stderr
		}
		points, err := bench.MatchScalePartitionedObs(sys, counts, *outstanding, *wild, 2, *parallelWorld, *parallelWorld, sm)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-bw: %v\n", err)
			os.Exit(1)
		}
		h, r := bench.MatchScaleTable(points)
		fmt.Print(bench.FormatTable(h, r))
		if sm != nil {
			fmt.Printf("\nHost-time attribution (all partitioned points pooled)\n\n")
			sm.Report(os.Stdout)
		}
	}

	if *traceOut == "" && !*metrics && !*critReport && *flame == "" {
		return
	}
	st, block, err := clmpi.ParseStrategy(*strategyName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-bw: %v\n", err)
		os.Exit(2)
	}
	trc := trace.New()
	bw, err := bench.MeasureP2PTraced(sys, st, block, *msg, trc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-bw: traced transfer: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ntraced transfer: %s, %d bytes, %.1f MB/s\n", st, *msg, bw/1e6)
	if *metrics {
		fmt.Printf("\n%s", trc.Bus().Metrics().Format())
	}
	if *critReport || *flame != "" {
		a := critpath.Analyze(trc.Bus())
		if *critReport {
			fmt.Printf("\n%s", a.Report())
		}
		if *flame != "" {
			if err := os.WriteFile(*flame, []byte(a.Folded()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "clmpi-bw: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote folded stacks (render with flamegraph.pl or speedscope): %s\n", *flame)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-bw: %v\n", err)
			os.Exit(1)
		}
		if err := trc.Bus().WriteChrome(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-bw: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace (load in chrome://tracing or Perfetto): %s\n", *traceOut)
	}
}

// panelLabel maps the two paper systems onto their figure panel letters;
// any other system labels the panel with its lower-cased name.
func panelLabel(name string) string {
	switch strings.ToLower(name) {
	case "cichlid":
		return "a"
	case "ricc":
		return "b"
	}
	return strings.ToLower(name)
}

// parseRanks parses a comma-separated list of world sizes.
func parseRanks(s string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad -ranks entry %q (want integers >= 2)", f)
		}
		counts = append(counts, n)
	}
	return counts, nil
}
