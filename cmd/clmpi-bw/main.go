// Command clmpi-bw regenerates Figure 8 of the clMPI paper: the sustained
// point-to-point bandwidth between two remote devices for the pinned,
// mapped, and pipelined(N) data-transfer implementations, swept over
// message sizes, on either simulated system.
//
// Usage:
//
//	clmpi-bw -system cichlid
//	clmpi-bw -system ricc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cluster"
)

func main() {
	system := flag.String("system", "ricc", "system to simulate: cichlid or ricc")
	flag.Parse()
	sys, ok := cluster.Systems()[*system]
	if !ok {
		fmt.Fprintf(os.Stderr, "clmpi-bw: unknown system %q (want cichlid or ricc)\n", *system)
		os.Exit(2)
	}
	fmt.Printf("Figure 8(%s): point-to-point sustained bandwidth on %s\n\n",
		map[string]string{"cichlid": "a", "ricc": "b"}[*system], sys.Name)
	headers, rows, err := bench.Fig8(sys)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-bw: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(bench.FormatTable(headers, rows))
}
