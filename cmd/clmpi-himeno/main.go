// Command clmpi-himeno regenerates Figure 9 of the clMPI paper: the
// sustained performance of the Himeno benchmark under the serial,
// hand-optimized, and clMPI implementations across node counts, on either
// simulated system, annotated with the serial implementation's
// computation/communication ratio.
//
// With -trace and/or -metrics, the tool additionally runs one fully
// instrumented clMPI configuration (at -trace-nodes nodes) and exports its
// unified event stream — command queues, MPI protocol, link occupancy — as
// Chrome trace_event JSON and/or its metrics registry (link utilization,
// overlap per iteration, strategy selections).
//
// Usage:
//
//	clmpi-himeno -system cichlid -size M -iters 6
//	clmpi-himeno -system ricc
//	clmpi-himeno -system cichlid -size S -iters 2 -trace out.json -metrics
//	clmpi-himeno -system cichlid -size S -iters 2 -critpath -flame out.folded
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/himeno"
	"repro/internal/profiling"
	"repro/internal/sweep"
	"repro/internal/trace/critpath"
)

// panelLabel maps the two paper systems onto their figure panel letters;
// any other system labels the panel with its lower-cased name.
func panelLabel(name string) string {
	switch strings.ToLower(name) {
	case "cichlid":
		return "a"
	case "ricc":
		return "b"
	}
	return strings.ToLower(name)
}

func main() {
	system := flag.String("system", "cichlid", "system to simulate: a preset name (cichlid, ricc, ricc-verbs, hopper) or a spec file path")
	sizeName := flag.String("size", "M", "Himeno size: XS, S, M or L")
	iters := flag.Int("iters", 6, "Jacobi iterations to time")
	all := flag.Bool("all", false, "include the GPU-aware MPI (§II) and out-of-order clMPI implementations")
	traceOut := flag.String("trace", "", "write a traced clMPI run as Chrome trace_event JSON to this file")
	metrics := flag.Bool("metrics", false, "print the traced clMPI run's metrics registry")
	traceNodes := flag.Int("trace-nodes", 2, "node count of the traced run (-trace/-metrics/-critpath/-flame)")
	critReport := flag.Bool("critpath", false, "print the traced run's critical-path analysis (attribution, what-if bounds, per-iteration overlap)")
	flame := flag.String("flame", "", "write the traced run's critical path as folded flamegraph stacks to this file")
	parallel := flag.Int("parallel", 0, "sweep worker pool size (0 = all host cores, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()
	sweep.SetWorkers(*parallel)
	stopProfiling, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-himeno: %v\n", err)
		os.Exit(1)
	}
	defer stopProfiling()
	sys, err := cluster.Resolve(*system)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-himeno: %v\n", err)
		os.Exit(2)
	}
	size, err := himeno.SizeByName(*sizeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-himeno: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("Figure 9(%s): Himeno %s sustained performance on %s (%d iterations)\n\n",
		panelLabel(sys.Name), size.Name, sys.Name, *iters)
	impls := []himeno.Impl{himeno.Serial, himeno.HandOpt, himeno.CLMPI}
	if *all {
		impls = append(impls, himeno.GPUAware, himeno.CLMPIOutOfOrder)
	}
	points, err := bench.Fig9With(sys, size, *iters, impls)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-himeno: %v\n", err)
		os.Exit(1)
	}
	headers, rows := bench.Fig9Table(points)
	fmt.Print(bench.FormatTable(headers, rows))

	if *traceOut == "" && !*metrics && !*critReport && *flame == "" {
		return
	}
	trc, _, err := bench.TraceHimeno(sys, himeno.CLMPI, size, *traceNodes, *iters)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-himeno: traced run: %v\n", err)
		os.Exit(1)
	}
	overlap, nicUtil := bench.ObservedOverlap(trc)
	fmt.Printf("\ntraced clMPI run: %d nodes, overlap ratio %.3f, peak NIC utilization %.1f%%\n",
		*traceNodes, overlap, 100*nicUtil)
	if *metrics {
		fmt.Printf("\n%s", trc.Bus().Metrics().Format())
	}
	if *critReport || *flame != "" {
		a := critpath.Analyze(trc.Bus())
		if *critReport {
			fmt.Printf("\n%s", a.Report())
		}
		if *flame != "" {
			if err := os.WriteFile(*flame, []byte(a.Folded()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "clmpi-himeno: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote folded stacks (render with flamegraph.pl or speedscope): %s\n", *flame)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-himeno: %v\n", err)
			os.Exit(1)
		}
		if err := trc.Bus().WriteChrome(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-himeno: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace (load in chrome://tracing or Perfetto): %s\n", *traceOut)
	}
}
