// Command clmpi-himeno regenerates Figure 9 of the clMPI paper: the
// sustained performance of the Himeno benchmark under the serial,
// hand-optimized, and clMPI implementations across node counts, on either
// simulated system, annotated with the serial implementation's
// computation/communication ratio.
//
// Usage:
//
//	clmpi-himeno -system cichlid -size M -iters 6
//	clmpi-himeno -system ricc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/himeno"
)

func main() {
	system := flag.String("system", "cichlid", "system to simulate: cichlid or ricc")
	sizeName := flag.String("size", "M", "Himeno size: XS, S, M or L")
	iters := flag.Int("iters", 6, "Jacobi iterations to time")
	all := flag.Bool("all", false, "include the GPU-aware MPI (§II) and out-of-order clMPI implementations")
	flag.Parse()
	sys, ok := cluster.Systems()[*system]
	if !ok {
		fmt.Fprintf(os.Stderr, "clmpi-himeno: unknown system %q\n", *system)
		os.Exit(2)
	}
	size, err := himeno.SizeByName(*sizeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-himeno: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("Figure 9(%s): Himeno %s sustained performance on %s (%d iterations)\n\n",
		map[string]string{"cichlid": "a", "ricc": "b"}[*system], size.Name, sys.Name, *iters)
	impls := []himeno.Impl{himeno.Serial, himeno.HandOpt, himeno.CLMPI}
	if *all {
		impls = append(impls, himeno.GPUAware, himeno.CLMPIOutOfOrder)
	}
	points, err := bench.Fig9With(sys, size, *iters, impls)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-himeno: %v\n", err)
		os.Exit(1)
	}
	headers, rows := bench.Fig9Table(points)
	fmt.Print(bench.FormatTable(headers, rows))
}
