// Command clmpi-critpath runs the critical-path engine on a traced
// simulation and exports the virtual-time profile: a human-readable report
// (per-class attribution, what-if speedup bounds, per-iteration overlap
// efficiency), folded stacks for flamegraph.pl / speedscope, and a gzipped
// profile.proto that `go tool pprof` opens directly.
//
// The input is either one of the named deterministic presets (-preset
// cichlid|ricc, the paper's two systems running the clMPI Himeno solver) or
// a saved native trace (-in, the format written by `clmpi-trace -o dir/`).
//
// Usage:
//
//	clmpi-critpath -preset cichlid
//	clmpi-critpath -preset ricc -folded ricc.folded -pprof ricc.pb.gz
//	clmpi-critpath -in out/trace.native -report report.txt
//	go tool pprof -top profile.pb.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"

	"repro/internal/bench"
	"repro/internal/trace"
	"repro/internal/trace/critpath"
)

func main() {
	preset := flag.String("preset", "cichlid", "deterministic preset to run: cichlid or ricc (ignored with -in)")
	in := flag.String("in", "", "analyze a saved native trace instead of running a preset")
	report := flag.String("report", "-", "write the human-readable report here ('-' = stdout, '' = skip)")
	folded := flag.String("folded", "", "write folded flamegraph stacks to this file")
	pprofOut := flag.String("pprof", "", "write a gzipped pprof profile.proto to this file")
	flag.Parse()

	if *in == "" && !slices.Contains(bench.TracePresetNames(), *preset) {
		// Bad flag values exit 2, runtime failures exit 1, like the other
		// tools.
		fmt.Fprintf(os.Stderr, "clmpi-critpath: unknown preset %q (have: %s)\n",
			*preset, strings.Join(bench.TracePresetNames(), ", "))
		os.Exit(2)
	}
	bus, err := loadBus(*in, *preset)
	if err != nil {
		fail(err)
	}
	a := critpath.Analyze(bus)

	if *report == "-" {
		fmt.Print(a.Report())
	} else if *report != "" {
		if err := os.WriteFile(*report, []byte(a.Report()), 0o644); err != nil {
			fail(err)
		}
	}
	if *folded != "" {
		if err := os.WriteFile(*folded, []byte(a.Folded()), 0o644); err != nil {
			fail(err)
		}
	}
	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fail(err)
		}
		if err := a.WriteProfile(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote pprof profile (open with `go tool pprof -top %s`)\n", *pprofOut)
	}
}

func loadBus(in, preset string) (*trace.Bus, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadNative(f)
	}
	trc, err := bench.TracePreset(preset)
	if err != nil {
		return nil, err
	}
	return trc.Bus(), nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "clmpi-critpath: %v\n", err)
	os.Exit(1)
}
