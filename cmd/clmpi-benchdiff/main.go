// Command clmpi-benchdiff compares a `go test -bench` run against one of the
// repository's checked-in BENCH_*.json baselines and prints a benchstat-style
// regression note. CI runs it on the benchmark-smoke output; by default it
// only reports (single-shot CI numbers are noisy), with -gate it exits
// non-zero when a cell slows down by more than -flag percent.
//
// Usage:
//
//	go test -bench MPIMatching -run '^$' ./internal/mpi/ | clmpi-benchdiff -baseline BENCH_mpi.json
//	clmpi-benchdiff -baseline BENCH_mpi.json -bench bench-mpi.txt -trim BenchmarkMPIMatching/ -flag 50 -gate
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

func main() {
	baseline := flag.String("baseline", "BENCH_mpi.json", "checked-in baseline JSON to compare against")
	benchFile := flag.String("bench", "-", "go test -bench output file ('-' = stdin)")
	trim := flag.String("trim", "BenchmarkMPIMatching/", "prefix removed from measured names before grid lookup")
	flagPct := flag.Float64("flag", 50, "mark cells that slowed down by more than this percentage (0 disables)")
	gate := flag.Bool("gate", false, "exit non-zero when any cell is marked")
	flag.Parse()

	base, err := loadBaseline(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-benchdiff: %v\n", err)
		os.Exit(2)
	}
	var out []byte
	if *benchFile == "-" {
		out, err = io.ReadAll(os.Stdin)
	} else {
		out, err = os.ReadFile(*benchFile)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-benchdiff: %v\n", err)
		os.Exit(2)
	}
	cells := bench.ParseGoBench(string(out))
	if len(cells) == 0 {
		fmt.Fprintf(os.Stderr, "clmpi-benchdiff: no benchmark lines in input\n")
		os.Exit(2)
	}
	deltas, unmatched, missing := bench.DiffBench(base, cells, *trim)
	note, flagged := bench.FormatBenchDiff(deltas, unmatched, missing, *flagPct)
	fmt.Printf("benchdiff vs %s (base commit %s):\n%s", *baseline, base.CommitBase, note)
	if flagged > 0 {
		fmt.Printf("%d cell(s) regressed more than %.0f%%\n", flagged, *flagPct)
		if *gate {
			os.Exit(1)
		}
	}
}

func loadBaseline(path string) (*bench.BenchBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return bench.LoadBenchBaseline(data)
}
