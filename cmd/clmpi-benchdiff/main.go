// Command clmpi-benchdiff compares a `go test -bench` run against one of the
// repository's checked-in BENCH_*.json baselines and prints a benchstat-style
// regression note. Baselines carry a "diff" spec (bench regex, package,
// benchtime, trim), so CI loops over every baseline with the same generic
// invocation; -run regenerates the measurement from that spec instead of
// reading pre-captured output.
//
// Two thresholds with different jobs: -flag marks cells in the note (noisy
// single-shot numbers deserve eyeballs, not build failures), while
// -max-regress is the gate — any cell slower than that multiple of its
// baseline ns/op exits non-zero and fails the build.
//
// Usage:
//
//	go test -bench MPIMatching -run '^$' ./internal/mpi/ | clmpi-benchdiff -baseline BENCH_mpi.json
//	clmpi-benchdiff -baseline BENCH_serve.json -run -out bench-serve.txt -max-regress 2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"repro/internal/bench"
)

func main() {
	baseline := flag.String("baseline", "BENCH_mpi.json", "checked-in baseline JSON to compare against")
	benchFile := flag.String("bench", "-", "go test -bench output file ('-' = stdin); ignored with -run")
	run := flag.Bool("run", false, "regenerate the measurement with `go test` per the baseline's diff spec")
	out := flag.String("out", "", "with -run, also write the raw go test output to this file")
	trim := flag.String("trim", "", "prefix removed from measured names before grid lookup (default: the baseline's diff.trim)")
	flagPct := flag.Float64("flag", 50, "mark cells that slowed down by more than this percentage (0 disables)")
	maxRegress := flag.Float64("max-regress", 0, "exit non-zero when any cell's ns/op exceeds this multiple of its baseline (e.g. 2 = fail on a >2x regression; 0 disables)")
	maxAllocRegress := flag.Float64("max-alloc-regress", 0, "exit non-zero when any cell's allocs/op exceeds this multiple of its baseline; allocation counts are deterministic, so a tight limit like 1.1 is safe (0 disables)")
	maxBytesRegress := flag.Float64("max-bytes-regress", 0, "exit non-zero when any cell's B/op exceeds this multiple of its baseline; heap bytes are deterministic like allocation counts, and this catches same-count-but-bigger allocations (0 disables)")
	gate := flag.Bool("gate", false, "exit non-zero when any cell is marked by -flag")
	pairPrefix := flag.String("pair-prefix", "", "compare every measured cell named PREFIX+X against cell X of the same run (baseline-free: same-run pairing cancels host speed, so tight bounds are meaningful)")
	maxPairRegress := flag.Float64("max-pair-regress", 0, "with -pair-prefix, exit non-zero when a prefixed cell's ns/op exceeds this multiple of its twin (e.g. 1.03 = fail when the prefixed variant is >3% slower; 0 disables)")
	maxPairAllocs := flag.Int64("max-pair-allocs", -1, "with -pair-prefix, exit non-zero when a prefixed cell makes more than this many additional allocs/op over its twin (0 demands parity; negative disables)")
	flag.Parse()

	base, err := loadBaseline(*baseline)
	if err != nil {
		fatal(err)
	}
	if *trim == "" && base.Diff != nil {
		*trim = base.Diff.Trim
	}

	var text string
	if *run {
		text, err = runBench(base, *baseline, *out)
	} else {
		text, err = readBench(*benchFile)
	}
	if err != nil {
		fatal(err)
	}
	cells := bench.ParseGoBench(text)
	if len(cells) == 0 {
		fatal(fmt.Errorf("no benchmark lines in input"))
	}
	deltas, unmatched, missing := bench.DiffBench(base, cells, *trim)
	note, flagged := bench.FormatBenchDiff(deltas, unmatched, missing, *flagPct)
	fmt.Printf("benchdiff vs %s (base commit %s):\n%s", *baseline, base.CommitBase, note)

	exceeded := bench.RegressionsBeyond(deltas, *maxRegress)
	for _, d := range exceeded {
		fmt.Printf("GATE: %s is %.1fx its baseline (%.0f -> %.0f ns/op), over the %.1fx limit\n",
			d.Name, d.Current/d.Base, d.Base, d.Current, *maxRegress)
	}
	allocExceeded := bench.AllocRegressionsBeyond(deltas, *maxAllocRegress)
	for _, d := range allocExceeded {
		fmt.Printf("GATE: %s allocates %.2fx its baseline (%d -> %d allocs/op), over the %.2fx limit\n",
			d.Name, float64(d.CurrentAllocs)/float64(d.BaseAllocs), d.BaseAllocs, d.CurrentAllocs, *maxAllocRegress)
	}
	bytesExceeded := bench.BytesRegressionsBeyond(deltas, *maxBytesRegress)
	for _, d := range bytesExceeded {
		fmt.Printf("GATE: %s allocates %.2fx its baseline bytes (%d -> %d B/op), over the %.2fx limit\n",
			d.Name, float64(d.CurrentBytes)/float64(d.BaseBytes), d.BaseBytes, d.CurrentBytes, *maxBytesRegress)
	}
	if flagged > 0 {
		fmt.Printf("%d cell(s) regressed more than %.0f%%\n", flagged, *flagPct)
	}
	var pairViolations []string
	if *pairPrefix != "" {
		// Pair on trimmed names: cells come out of ParseGoBench keyed
		// "BenchmarkPDES/obs=on/...", but the prefix is expressed in the same
		// grid-name space the baselines use ("obs=on/...").
		paired := cells
		if *trim != "" {
			paired = make(map[string]bench.BenchCell, len(cells))
			for n, c := range cells {
				paired[strings.TrimPrefix(n, *trim)] = c
			}
		}
		pairs, missing := bench.PairDeltas(paired, *pairPrefix)
		if len(pairs) == 0 {
			fatal(fmt.Errorf("-pair-prefix %q matched no cell pairs", *pairPrefix))
		}
		for _, p := range pairs {
			fmt.Printf("pair %s vs %s: %.3fx ns/op (%.0f vs %.0f), %+d allocs/op\n",
				p.Name, p.Against, p.A.NsPerOp/p.B.NsPerOp, p.A.NsPerOp, p.B.NsPerOp,
				p.A.AllocsPerOp-p.B.AllocsPerOp)
		}
		for _, n := range missing {
			fmt.Printf("pair cell %s has no unprefixed twin in this run\n", n)
		}
		pairViolations = bench.PairViolations(pairs, *maxPairRegress, *maxPairAllocs)
		for _, v := range pairViolations {
			fmt.Println(v)
		}
	}
	if len(exceeded) > 0 || len(allocExceeded) > 0 || len(bytesExceeded) > 0 ||
		len(pairViolations) > 0 || (*gate && flagged > 0) {
		os.Exit(1)
	}
}

// runBench executes the baseline's diff spec and returns (and optionally
// tees) the go test output.
func runBench(base *bench.BenchBaseline, path, out string) (string, error) {
	spec := base.Diff
	if spec == nil {
		return "", fmt.Errorf("%s has no diff spec; pass the bench output explicitly", path)
	}
	args := []string{"test", "-run", "^$", "-bench", spec.BenchRegex, "-benchmem"}
	if spec.BenchTime != "" {
		args = append(args, "-benchtime", spec.BenchTime)
	}
	args = append(args, spec.Package)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if out != "" {
		if werr := os.WriteFile(out, raw, 0o644); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return "", fmt.Errorf("go %v: %w\n%s", args, err, raw)
	}
	return string(raw), nil
}

// readBench loads pre-captured bench output from a file or stdin.
func readBench(path string) (string, error) {
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	return string(raw), err
}

func loadBaseline(path string) (*bench.BenchBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return bench.LoadBenchBaseline(data)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "clmpi-benchdiff: %v\n", err)
	os.Exit(2)
}
