// Command clmpi-nanopowder regenerates Figure 10 of the clMPI paper: the
// per-step execution time of the nanopowder growth simulation on RICC for
// the baseline (MPI_Isend + MPI_Recv + clEnqueueWriteBuffer) and clMPI
// (MPI_Isend with MPI_CL_MEM + clEnqueueRecvBuffer) implementations, over
// the node counts that divide the 40 reactor cells.
//
// Usage:
//
//	clmpi-nanopowder
//	clmpi-nanopowder -steps 5 -bins 128
//	clmpi-nanopowder -system hopper
//	clmpi-nanopowder -system mycluster.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/nanopowder"
)

func main() {
	system := flag.String("system", "ricc", "system to simulate: a preset name or a spec file path")
	steps := flag.Int("steps", 3, "simulation steps to time")
	bins := flag.Int("bins", 256, "particle size bins per cell")
	flag.Parse()
	sys, err := cluster.Resolve(*system)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-nanopowder: %v\n", err)
		os.Exit(2)
	}
	params := nanopowder.DefaultParams()
	params.Steps = *steps
	params.Bins = *bins
	fmt.Printf("Figure 10: nanopowder growth simulation on %s (%d cells, %d bins, %.0f MB coefficients/step)\n\n",
		sys.Name, params.Cells, params.Bins, float64(params.TotalCoeffBytes())/1e6)
	points, err := bench.Fig10On(sys, params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-nanopowder: %v\n", err)
		os.Exit(1)
	}
	headers, rows := bench.Fig10Table(points)
	fmt.Print(bench.FormatTable(headers, rows))
}
