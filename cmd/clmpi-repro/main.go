// Command clmpi-repro regenerates the entire evaluation of the clMPI paper
// in one run: Table I, Figures 4, 8(a), 8(b), 9(a), 9(b) and 10, followed
// by the end-to-end bitwise verification summary. It is the "reproduce
// everything" entry point; the per-figure tools (clmpi-bw, clmpi-himeno,
// clmpi-nanopowder, clmpi-trace, clmpi-sysinfo, clmpi-ablate, clmpi-verify)
// expose the same experiments individually with more knobs.
//
// Usage:
//
//	clmpi-repro               # full evaluation, ~1 minute of host time
//	clmpi-repro -quick        # smaller problem sizes, a few seconds
//	clmpi-repro -parallel 4   # cap the sweep worker pool at 4 host cores
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/himeno"
	"repro/internal/nanopowder"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/sweep"
	"repro/internal/trace/critpath"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced problem sizes")
	systemsFlag := flag.String("systems", "cichlid,ricc", "comma-separated systems for the Figure 8/9 sweeps: preset names or spec file paths")
	ranks := flag.Int("ranks", 0, "extra world size for the large-world matching scaling section (0 = default grid only)")
	critReport := flag.Bool("critpath", false, "append a critical-path profile of a traced clMPI Himeno run (attribution, what-if bounds)")
	flame := flag.String("flame", "", "write that traced run's critical path as folded flamegraph stacks to this file")
	parallel := flag.Int("parallel", 0, "sweep worker pool size (0 = all host cores, 1 = serial)")
	parallelWorld := flag.Int("parallel-world", 0, "run the large-world matching scaling section on a partitioned engine with this many partitions and host workers per point (0 = the serial engine)")
	obsReport := flag.Bool("obs-report", false, "with -parallel-world, append a host-time attribution report (simulate/stall/advert/merge per shard) to the matching scaling section")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()
	sweep.SetWorkers(*parallel)
	stop, err := profiling.Start(*cpuprofile, *memprofile)
	check(err)
	stopProfiling = stop
	defer stop()

	himenoSize := himeno.SizeM
	himenoIters := 6
	params := nanopowder.DefaultParams()
	if *quick {
		himenoSize = himeno.SizeS
		himenoIters = 3
		params = nanopowder.Params{Cells: 40, Bins: 96, Steps: 2, SubSteps: 120}
	}

	section("Table I — system specifications")
	fmt.Print(bench.Table1())

	section("Figure 4 — scheduling timelines (Himeno, 2 Cichlid nodes)")
	panels := []struct {
		name string
		impl himeno.Impl
	}{{"(a) serialized", himeno.Serial}, {"(b) hand-optimized", himeno.HandOpt}, {"(c) clMPI", himeno.CLMPI}}
	// The three panels are independent traced runs: render them in
	// parallel, print them in panel order.
	rendered, err := sweep.Map(len(panels), func(i int) (string, error) {
		return bench.Fig4(panels[i].impl, himeno.SizeS, 2)
	})
	check(err)
	for i, panel := range panels {
		fmt.Printf("%s\n\n%s\n", panel.name, rendered[i])
	}

	var sweepSystems []cluster.System
	for _, arg := range strings.Split(*systemsFlag, ",") {
		sys, err := cluster.Resolve(strings.TrimSpace(arg))
		check(err)
		sweepSystems = append(sweepSystems, sys)
	}

	for _, sys := range sweepSystems {
		section(fmt.Sprintf("Figure 8(%s) — p2p sustained bandwidth, %s",
			panelLabel(sys.Name), sys.Name))
		headers, rows, err := bench.Fig8(sys)
		check(err)
		fmt.Print(bench.FormatTable(headers, rows))
	}

	for _, sys := range sweepSystems {
		section(fmt.Sprintf("Figure 9(%s) — Himeno %s sustained performance, %s (%d iterations)",
			panelLabel(sys.Name), himenoSize.Name, sys.Name, himenoIters))
		nodes := bench.Fig9Nodes(sys)
		if *quick && sys.MaxNodes > 32 {
			nodes = []int{1, 2, 4, 8, 16, 32} // the S grid cannot feed 64 ranks
		}
		impls := []himeno.Impl{himeno.Serial, himeno.HandOpt, himeno.CLMPI}
		points, err := bench.Fig9Sweep(sys, himenoSize, himenoIters, impls, nodes)
		check(err)
		headers, rows := bench.Fig9Table(points)
		fmt.Print(bench.FormatTable(headers, rows))
	}

	section(fmt.Sprintf("Figure 10 — nanopowder growth simulation, RICC (%.0f MB coefficients/step)",
		float64(params.TotalCoeffBytes())/1e6))
	points, err := bench.Fig10(params)
	check(err)
	headers, rows := bench.Fig10Table(points)
	fmt.Print(bench.FormatTable(headers, rows))

	counts := []int{64, 128, 256, 512}
	if *quick {
		counts = []int{64, 128}
	}
	if *ranks > 0 {
		counts = append(counts, *ranks)
	}
	if *parallelWorld > 1 {
		section(fmt.Sprintf("Large-world matching scaling — dense wildcard exchange, RICC fabric, %v ranks, %d-way partitioned engine", counts, *parallelWorld))
	} else {
		section(fmt.Sprintf("Large-world matching scaling — dense wildcard exchange, RICC fabric, %v ranks", counts))
	}
	var sm *obs.Sim
	if *obsReport && *parallelWorld > 1 {
		sm = obs.NewSim(obs.NewRegistry(), obs.NewRecorder(*parallelWorld, 0))
		sm.DeadlockDump = os.Stderr
	}
	scale, err := bench.MatchScalePartitionedObs(cluster.RICC(), counts, 32, 25, 2, *parallelWorld, *parallelWorld, sm)
	check(err)
	headers, rows = bench.MatchScaleTable(scale)
	fmt.Print(bench.FormatTable(headers, rows))
	if sm != nil {
		// Deliberately inside this section: the spec gate's byte compare
		// filters the whole matching-scaling block (its host-ms column is
		// nondeterministic anyway), so the host-time report rides in the
		// already-excluded region.
		fmt.Printf("\nHost-time attribution (all partitioned points pooled)\n\n")
		sm.Report(os.Stdout)
	}

	if *critReport || *flame != "" {
		section("Critical-path profile — traced clMPI Himeno run (2 Cichlid nodes)")
		trc, _, err := bench.TraceHimeno(cluster.Cichlid(), himeno.CLMPI, himeno.SizeS, 2, himenoIters)
		check(err)
		a := critpath.Analyze(trc.Bus())
		if *critReport {
			fmt.Print(a.Report())
		}
		if *flame != "" {
			check(os.WriteFile(*flame, []byte(a.Folded()), 0o644))
			fmt.Printf("\nwrote folded stacks (render with flamegraph.pl or speedscope): %s\n", *flame)
		}
	}

	section("Verification — distributed implementations vs host references")
	verifySummary(himenoIters)
}

// panelLabel maps the two paper systems onto their figure panel letters;
// any other system labels the panel with its lower-cased name.
func panelLabel(name string) string {
	switch strings.ToLower(name) {
	case "cichlid":
		return "a"
	case "ricc":
		return "b"
	}
	return strings.ToLower(name)
}

func section(title string) {
	fmt.Printf("\n================================================================\n%s\n================================================================\n\n", title)
}

// stopProfiling flushes any active profiles; check calls it before a fatal
// exit so partial profiles are still written.
var stopProfiling = func() {}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-repro: %v\n", err)
		stopProfiling()
		os.Exit(1)
	}
}

// verifySummary is a compact version of clmpi-verify. Every verification run
// is an independent simulation, so they fan out over the sweep pool; output
// order stays fixed because results come back indexed.
func verifySummary(iters int) {
	wantGrid, _ := himeno.Reference(himeno.SizeXS, iters, himeno.ScrambledInit)
	himenoImpls := []himeno.Impl{himeno.Serial, himeno.HandOpt, himeno.CLMPI, himeno.GPUAware, himeno.CLMPIOutOfOrder}
	himenoOK, err := sweep.Map(len(himenoImpls), func(i int) (bool, error) {
		res, err := himeno.Run(himeno.Config{
			System: cluster.Cichlid(), Nodes: 4, Size: himeno.SizeXS, Iters: iters,
			Impl: himenoImpls[i], Mode: himeno.ScrambledInit, Verify: true,
		})
		if err != nil {
			return false, err
		}
		for i := range res.Grid {
			if res.Grid[i] != wantGrid[i] {
				return false, nil
			}
		}
		return true, nil
	})
	check(err)
	okAll := true
	for i, impl := range himenoImpls {
		okAll = okAll && himenoOK[i]
		fmt.Printf("Himeno %-16s 4 nodes: bitwise match = %v\n", impl.String(), himenoOK[i])
	}
	params := nanopowder.Params{Cells: 8, Bins: 96, Steps: 2, SubSteps: 50}
	wantCells := nanopowder.Reference(params)
	npImpls := []nanopowder.Impl{nanopowder.Baseline, nanopowder.CLMPI}
	npOK, err := sweep.Map(len(npImpls), func(i int) (bool, error) {
		res, err := nanopowder.Run(nanopowder.Config{
			System: cluster.RICC(), Nodes: 4, Impl: npImpls[i], Params: params, Verify: true,
		})
		if err != nil {
			return false, err
		}
		for c := range wantCells {
			for k := range wantCells[c] {
				if res.Final[c][k] != wantCells[c][k] {
					return false, nil
				}
			}
		}
		return true, nil
	})
	check(err)
	for i, impl := range npImpls {
		okAll = okAll && npOK[i]
		fmt.Printf("Nanopowder %-12s 4 nodes: bitwise match = %v\n", impl.String(), npOK[i])
	}
	if !okAll {
		fmt.Println("\nVERIFICATION FAILED")
		os.Exit(1)
	}
	fmt.Println("\nall verifications passed")
}
