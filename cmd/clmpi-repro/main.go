// Command clmpi-repro regenerates the entire evaluation of the clMPI paper
// in one run: Table I, Figures 4, 8(a), 8(b), 9(a), 9(b) and 10, followed
// by the end-to-end bitwise verification summary. It is the "reproduce
// everything" entry point; the per-figure tools (clmpi-bw, clmpi-himeno,
// clmpi-nanopowder, clmpi-trace, clmpi-sysinfo, clmpi-ablate, clmpi-verify)
// expose the same experiments individually with more knobs.
//
// Usage:
//
//	clmpi-repro               # full evaluation, ~1 minute of host time
//	clmpi-repro -quick        # smaller problem sizes, a few seconds
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/himeno"
	"repro/internal/nanopowder"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced problem sizes")
	flag.Parse()

	himenoSize := himeno.SizeM
	himenoIters := 6
	params := nanopowder.DefaultParams()
	if *quick {
		himenoSize = himeno.SizeS
		himenoIters = 3
		params = nanopowder.Params{Cells: 40, Bins: 96, Steps: 2, SubSteps: 120}
	}

	section("Table I — system specifications")
	fmt.Print(bench.Table1())

	section("Figure 4 — scheduling timelines (Himeno, 2 Cichlid nodes)")
	for _, panel := range []struct {
		name string
		impl himeno.Impl
	}{{"(a) serialized", himeno.Serial}, {"(b) hand-optimized", himeno.HandOpt}, {"(c) clMPI", himeno.CLMPI}} {
		out, err := bench.Fig4(panel.impl, himeno.SizeS, 2)
		check(err)
		fmt.Printf("%s\n\n%s\n", panel.name, out)
	}

	for _, sysName := range []string{"cichlid", "ricc"} {
		sys := cluster.Systems()[sysName]
		section(fmt.Sprintf("Figure 8(%s) — p2p sustained bandwidth, %s",
			map[string]string{"cichlid": "a", "ricc": "b"}[sysName], sys.Name))
		headers, rows, err := bench.Fig8(sys)
		check(err)
		fmt.Print(bench.FormatTable(headers, rows))
	}

	for _, sysName := range []string{"cichlid", "ricc"} {
		sys := cluster.Systems()[sysName]
		section(fmt.Sprintf("Figure 9(%s) — Himeno %s sustained performance, %s (%d iterations)",
			map[string]string{"cichlid": "a", "ricc": "b"}[sysName], himenoSize.Name, sys.Name, himenoIters))
		nodes := bench.Fig9Nodes(sys)
		if *quick && sysName == "ricc" {
			nodes = []int{1, 2, 4, 8, 16, 32} // the S grid cannot feed 64 ranks
		}
		impls := []himeno.Impl{himeno.Serial, himeno.HandOpt, himeno.CLMPI}
		points, err := bench.Fig9Sweep(sys, himenoSize, himenoIters, impls, nodes)
		check(err)
		headers, rows := bench.Fig9Table(points)
		fmt.Print(bench.FormatTable(headers, rows))
	}

	section(fmt.Sprintf("Figure 10 — nanopowder growth simulation, RICC (%.0f MB coefficients/step)",
		float64(params.TotalCoeffBytes())/1e6))
	points, err := bench.Fig10(params)
	check(err)
	headers, rows := bench.Fig10Table(points)
	fmt.Print(bench.FormatTable(headers, rows))

	section("Verification — distributed implementations vs host references")
	verifySummary(himenoIters)
}

func section(title string) {
	fmt.Printf("\n================================================================\n%s\n================================================================\n\n", title)
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-repro: %v\n", err)
		os.Exit(1)
	}
}

// verifySummary is a compact version of clmpi-verify.
func verifySummary(iters int) {
	wantGrid, _ := himeno.Reference(himeno.SizeXS, iters, himeno.ScrambledInit)
	okAll := true
	for _, impl := range []himeno.Impl{himeno.Serial, himeno.HandOpt, himeno.CLMPI, himeno.GPUAware, himeno.CLMPIOutOfOrder} {
		res, err := himeno.Run(himeno.Config{
			System: cluster.Cichlid(), Nodes: 4, Size: himeno.SizeXS, Iters: iters,
			Impl: impl, Mode: himeno.ScrambledInit, Verify: true,
		})
		check(err)
		ok := true
		for i := range res.Grid {
			if res.Grid[i] != wantGrid[i] {
				ok = false
				break
			}
		}
		okAll = okAll && ok
		fmt.Printf("Himeno %-16s 4 nodes: bitwise match = %v\n", impl.String(), ok)
	}
	params := nanopowder.Params{Cells: 8, Bins: 96, Steps: 2, SubSteps: 50}
	wantCells := nanopowder.Reference(params)
	for _, impl := range []nanopowder.Impl{nanopowder.Baseline, nanopowder.CLMPI} {
		res, err := nanopowder.Run(nanopowder.Config{
			System: cluster.RICC(), Nodes: 4, Impl: impl, Params: params, Verify: true,
		})
		check(err)
		ok := true
		for c := range wantCells {
			for k := range wantCells[c] {
				if res.Final[c][k] != wantCells[c][k] {
					ok = false
				}
			}
		}
		okAll = okAll && ok
		fmt.Printf("Nanopowder %-12s 4 nodes: bitwise match = %v\n", impl.String(), ok)
	}
	if !okAll {
		fmt.Println("\nVERIFICATION FAILED")
		os.Exit(1)
	}
	fmt.Println("\nall verifications passed")
}
