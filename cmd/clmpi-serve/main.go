// Command clmpi-serve runs the simulation-as-a-service daemon: an HTTP/JSON
// server that accepts (system, workload, parameter-grid) sweep jobs, shards
// their points across a bounded worker pool, streams per-point progress, and
// content-addresses finished results so a repeated what-if question is a
// cache hit instead of a re-simulation.
//
// Usage:
//
//	clmpi-serve -addr 127.0.0.1:8177
//	curl -s -X POST localhost:8177/v1/jobs?wait=1 -d '{"system":"cichlid"}'
//	clmpi-serve -addr :8177 -workers 8 -cache-entries 4096 -cache-dir /var/cache/clmpi
//	clmpi-serve -systems lab.json,dgx.json   # register spec files as daemon-local names
//
// See the README's "Running the sweep server" walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8177", "listen address")
	workers := flag.Int("workers", 0, "worker pool width shared by all jobs (0 = all host cores)")
	cacheEntries := flag.Int("cache-entries", 1024, "in-memory result cache capacity (entries)")
	cacheDir := flag.String("cache-dir", "", "persist results to this directory (survives eviction and restarts)")
	parallelWorld := flag.Int("parallel-world", 0, "default partitioned-engine width for matchscale jobs that do not set parallel_world (0 = serial engine); a partitioned point claims that many worker slots")
	systemsFlag := flag.String("systems", "", "comma-separated system spec files to register as daemon-local names (jobs may then name them in \"system\"; results are still content-addressed by the spec, not the name)")
	obsReport := flag.Bool("obs-report", false, "print the host-time attribution report (stall/simulate/advert/merge per shard, pooled over all partitioned jobs) to stderr at shutdown")
	flag.Parse()

	var registered map[string]cluster.System
	if *systemsFlag != "" {
		registered = make(map[string]cluster.System)
		for _, path := range strings.Split(*systemsFlag, ",") {
			sys, err := cluster.LoadFile(strings.TrimSpace(path))
			if err != nil {
				fmt.Fprintf(os.Stderr, "clmpi-serve: %v\n", err)
				os.Exit(2)
			}
			registered[strings.ToLower(sys.Name)] = sys
		}
	}

	mgr, err := serve.NewManager(serve.Options{
		Workers:       *workers,
		CacheEntries:  *cacheEntries,
		CacheDir:      *cacheDir,
		ParallelWorld: *parallelWorld,
		Systems:       registered,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-serve: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{Addr: *addr, Handler: serve.NewServer(mgr)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// SIGQUIT dumps the flight recorder without stopping the daemon — the
	// same snapshot GET /debug/flightz serves, for when the HTTP surface is
	// wedged or unreachable.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	go func() {
		for range quitc {
			mgr.FlightDump(os.Stderr)
		}
	}()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "clmpi-serve: listening on %s (workers=%d)\n", *addr, mgr.Workers())
	if len(registered) > 0 {
		names := make([]string, 0, len(registered))
		for name := range registered {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "clmpi-serve: registered systems: %s\n", strings.Join(names, ", "))
	}

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "clmpi-serve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "clmpi-serve: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-serve: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
	if *obsReport {
		fmt.Fprintln(os.Stderr, "clmpi-serve: host-time attribution at shutdown:")
		mgr.ObsReport(os.Stderr)
	}
}
