// Command clmpi-verify runs the reproduction's end-to-end correctness
// checks and prints a report: every distributed implementation of both
// evaluation applications is compared bit-for-bit against its host-only
// reference. This is the evidence that the performance figures measure real
// computations, not hollow cost models.
//
// Usage:
//
//	clmpi-verify
//	clmpi-verify -size S -nodes 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/himeno"
	"repro/internal/nanopowder"
)

func main() {
	sizeName := flag.String("size", "XS", "Himeno size for verification runs")
	iters := flag.Int("iters", 4, "Himeno iterations")
	flag.Parse()
	size, err := himeno.SizeByName(*sizeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-verify: %v\n", err)
		os.Exit(2)
	}
	failures := 0

	fmt.Printf("Himeno %s, %d iterations — final grids vs host reference (bitwise):\n\n", size.Name, *iters)
	wantGrid, wantGosa := himeno.Reference(size, *iters, himeno.ScrambledInit)
	var rows [][]string
	for _, impl := range []himeno.Impl{himeno.Serial, himeno.HandOpt, himeno.CLMPI, himeno.GPUAware, himeno.CLMPIOutOfOrder} {
		for _, nodes := range []int{1, 2, 4} {
			res, err := himeno.Run(himeno.Config{
				System: cluster.Cichlid(), Nodes: nodes, Size: size, Iters: *iters,
				Impl: impl, Mode: himeno.ScrambledInit, Verify: true,
			})
			verdict := "OK"
			if err != nil {
				verdict = "ERROR: " + err.Error()
				failures++
			} else {
				for i := range res.Grid {
					if res.Grid[i] != wantGrid[i] {
						verdict = fmt.Sprintf("MISMATCH at cell %d", i)
						failures++
						break
					}
				}
			}
			rows = append(rows, []string{impl.String(), fmt.Sprintf("%d", nodes), verdict})
		}
	}
	fmt.Print(bench.FormatTable([]string{"implementation", "nodes", "grid"}, rows))
	fmt.Printf("\nreference gosa: %.9e\n\n", wantGosa)

	fmt.Println("Nanopowder — final populations vs host reference (bitwise):")
	fmt.Println()
	params := nanopowder.Params{Cells: 8, Bins: 96, Steps: 3, SubSteps: 50}
	wantCells := nanopowder.Reference(params)
	rows = nil
	for _, impl := range []nanopowder.Impl{nanopowder.Baseline, nanopowder.CLMPI} {
		for _, nodes := range []int{1, 2, 4, 8} {
			res, err := nanopowder.Run(nanopowder.Config{
				System: cluster.RICC(), Nodes: nodes, Impl: impl, Params: params, Verify: true,
			})
			verdict := "OK"
			if err != nil {
				verdict = "ERROR: " + err.Error()
				failures++
			} else {
			outer:
				for c := range wantCells {
					for k := range wantCells[c] {
						if res.Final[c][k] != wantCells[c][k] {
							verdict = fmt.Sprintf("MISMATCH cell %d bin %d", c, k)
							failures++
							break outer
						}
					}
				}
			}
			rows = append(rows, []string{impl.String(), fmt.Sprintf("%d", nodes), verdict})
		}
	}
	fmt.Print(bench.FormatTable([]string{"implementation", "nodes", "state"}, rows))

	fmt.Println()
	if failures > 0 {
		fmt.Printf("FAILED: %d verification(s) did not match\n", failures)
		os.Exit(1)
	}
	fmt.Println("all verifications passed")
}
