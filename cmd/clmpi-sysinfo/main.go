// Command clmpi-sysinfo prints Table I of the clMPI paper: the
// specifications of the two simulated evaluation systems, Cichlid and RICC,
// including the cost-model parameters this reproduction derives from them.
package main

import (
	"fmt"

	"repro/internal/bench"
)

func main() {
	fmt.Println("Table I: system specifications (simulated)")
	fmt.Println()
	fmt.Print(bench.Table1())
}
