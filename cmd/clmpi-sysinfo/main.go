// Command clmpi-sysinfo renders Table I of the clMPI paper — the
// specifications of the simulated evaluation systems, including the
// cost-model parameters this reproduction derives from them — for any set
// of systems: built-in presets by name or spec files by path.
//
// With -o dir it instead exports every built-in preset as a canonical
// clmpi-system/v1 spec file, one per preset. The exported files are
// byte-identical to the specs embedded in the binary, so they round-trip:
// loading one back reproduces the preset bit for bit (the CI spec gate
// relies on this).
//
// Usage:
//
//	clmpi-sysinfo                                 # Table I, Cichlid + RICC
//	clmpi-sysinfo -system cichlid,hopper
//	clmpi-sysinfo -system mycluster.json
//	clmpi-sysinfo -o examples/systems             # export all presets
//	clmpi-sysinfo -system ricc -lookahead 4       # PDES lookahead matrix
//
// With -lookahead K it prints, instead of Table I, the conservative-PDES
// lookahead matrix the partitioned engine derives for a K-way split of each
// system — the minimum virtual-time distance each shard pair's messages must
// respect, which bounds how far shards may drift apart when a job runs
// parallel-in-run. -nodes overrides the world size (default: the system's
// node count).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/cluster"
)

func main() {
	systemsFlag := flag.String("system", "cichlid,ricc", "comma-separated systems to describe: preset names or spec file paths")
	outDir := flag.String("o", "", "export every built-in preset as a canonical spec file into this directory instead of printing Table I")
	lookahead := flag.Int("lookahead", 0, "print the PDES lookahead matrix for this many partitions instead of Table I (0 disables)")
	nodes := flag.Int("nodes", 0, "with -lookahead, the world size to derive the matrix for (default: the system's node count)")
	flag.Parse()

	if *outDir != "" {
		if err := exportPresets(*outDir); err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-sysinfo: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var systems []cluster.System
	for _, arg := range strings.Split(*systemsFlag, ",") {
		sys, err := cluster.Resolve(strings.TrimSpace(arg))
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-sysinfo: %v\n", err)
			os.Exit(2)
		}
		systems = append(systems, sys)
	}
	if *lookahead > 0 {
		for i, sys := range systems {
			if i > 0 {
				fmt.Println()
			}
			n := *nodes
			if n <= 0 {
				n = sys.MaxNodes
			}
			if n < *lookahead {
				fmt.Fprintf(os.Stderr, "clmpi-sysinfo: %s: %d nodes cannot span %d partitions\n", sys.Name, n, *lookahead)
				os.Exit(2)
			}
			fmt.Print(cluster.FormatLookaheadMatrix(sys, n, cluster.LookaheadMatrix(sys, n, *lookahead)))
		}
		return
	}
	fmt.Println("Table I: system specifications (simulated)")
	fmt.Println()
	fmt.Print(bench.SpecTable(systems...))
}

// exportPresets writes every built-in preset to dir as <name>.json in the
// canonical encoding (the same bytes that are embedded in the binary).
func exportPresets(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range cluster.PresetNames() {
		sys, err := cluster.Resolve(name)
		if err != nil {
			return err
		}
		data, err := cluster.EncodeSpec(sys)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%s)\n", path, sys.Name)
	}
	return nil
}
