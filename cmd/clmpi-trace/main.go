// Command clmpi-trace regenerates Figure 4 of the clMPI paper: timeline
// diagrams of how the serial, hand-optimized, and clMPI Himeno
// implementations schedule kernels, PCIe copies, and inter-node
// communication on a two-node run. Lanes are command queues; the clMPI
// variant shows communication commands (S/R) overlapping kernels (K) with
// the host thread blocked in neither.
//
// Usage:
//
//	clmpi-trace -size S -iters 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/himeno"
)

func main() {
	sizeName := flag.String("size", "S", "Himeno size: XS, S, M or L")
	iters := flag.Int("iters", 2, "iterations to trace")
	flag.Parse()
	size, err := himeno.SizeByName(*sizeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-trace: %v\n", err)
		os.Exit(2)
	}
	for _, impl := range []struct {
		panel string
		impl  himeno.Impl
	}{
		{"(a) serialized", himeno.Serial},
		{"(b) hand-optimized (host-blocked overlap)", himeno.HandOpt},
		{"(c) clMPI (event-driven overlap)", himeno.CLMPI},
	} {
		out, err := bench.Fig4(impl.impl, size, *iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Figure 4%s — Himeno %s, 2 nodes on Cichlid, %d iterations\n\n%s\n", impl.panel, size.Name, *iters, out)
	}
}
