// Command clmpi-trace regenerates Figure 4 of the clMPI paper: timeline
// diagrams of how the serial, hand-optimized, and clMPI Himeno
// implementations schedule kernels, PCIe copies, and inter-node
// communication on a two-node run. Lanes are command queues; the clMPI
// variant shows communication commands (S/R) overlapping kernels (K) with
// the host thread blocked in neither.
//
// Beyond the ASCII panels, the observability layer can export the clMPI
// panel's full event stream — command queues, MPI protocol phases, and
// link/NIC/PCIe occupancy — as Chrome trace_event JSON (open it in
// chrome://tracing or https://ui.perfetto.dev), and print the run's metrics
// registry (link utilization, eager/rendezvous counts, overlap ratios).
//
// With -o dir/ the clMPI panel's run is additionally dumped as a complete
// profiling bundle: the Chrome trace, the native trace (re-analyzable with
// `clmpi-critpath -in`), the critical-path report, folded flamegraph
// stacks, and a gzipped pprof profile of virtual time.
//
// Usage:
//
//	clmpi-trace -size S -iters 2
//	clmpi-trace -size S -iters 2 -trace out.json -metrics
//	clmpi-trace -size S -iters 2 -o profile/
//	go tool pprof -top profile/profile.pb.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/himeno"
	"repro/internal/trace"
	"repro/internal/trace/critpath"
)

func main() {
	system := flag.String("system", "cichlid", "system to simulate: a preset name or a spec file path")
	sizeName := flag.String("size", "S", "Himeno size: XS, S, M or L")
	iters := flag.Int("iters", 2, "iterations to trace")
	traceOut := flag.String("trace", "", "write the clMPI panel's events as Chrome trace_event JSON to this file")
	metrics := flag.Bool("metrics", false, "print each panel's metrics registry")
	outDir := flag.String("o", "", "write the clMPI panel's full profiling bundle (Chrome trace, native trace, critical-path report, folded stacks, pprof profile) into this directory")
	flag.Parse()
	sys, err := cluster.Resolve(*system)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-trace: %v\n", err)
		os.Exit(2)
	}
	size, err := himeno.SizeByName(*sizeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-trace: %v\n", err)
		os.Exit(2)
	}
	for _, impl := range []struct {
		panel string
		impl  himeno.Impl
	}{
		{"(a) serialized", himeno.Serial},
		{"(b) hand-optimized (host-blocked overlap)", himeno.HandOpt},
		{"(c) clMPI (event-driven overlap)", himeno.CLMPI},
	} {
		trc, out, err := bench.Fig4TracedOn(sys, impl.impl, size, *iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Figure 4%s — Himeno %s, 2 nodes on %s, %d iterations\n\n%s\n", impl.panel, size.Name, sys.Name, *iters, out)
		if *metrics {
			fmt.Printf("metrics %s\n%s\n", impl.panel, trc.Bus().Metrics().Format())
		}
		if *traceOut != "" && impl.impl == himeno.CLMPI {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "clmpi-trace: %v\n", err)
				os.Exit(1)
			}
			if err := trc.Bus().WriteChrome(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "clmpi-trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote Chrome trace (load in chrome://tracing or Perfetto): %s\n", *traceOut)
		}
		if *outDir != "" && impl.impl == himeno.CLMPI {
			if err := writeBundle(*outDir, trc.Bus()); err != nil {
				fmt.Fprintf(os.Stderr, "clmpi-trace: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// writeBundle dumps one traced run as a self-contained profiling directory.
func writeBundle(dir string, b *trace.Bus) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	a := critpath.Analyze(b)
	writeTo := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := writeTo("trace.json", func(f *os.File) error { return b.WriteChrome(f) }); err != nil {
		return err
	}
	if err := writeTo("trace.native", func(f *os.File) error { return b.WriteNative(f) }); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "critpath.txt"), []byte(a.Report()), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "critpath.folded"), []byte(a.Folded()), 0o644); err != nil {
		return err
	}
	if err := writeTo("profile.pb.gz", func(f *os.File) error { return a.WriteProfile(f) }); err != nil {
		return err
	}
	fmt.Printf("wrote profiling bundle to %s: trace.json (chrome://tracing), trace.native (clmpi-critpath -in), critpath.txt, critpath.folded (flamegraph.pl), profile.pb.gz (go tool pprof)\n", dir)
	return nil
}
