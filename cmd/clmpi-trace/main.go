// Command clmpi-trace regenerates Figure 4 of the clMPI paper: timeline
// diagrams of how the serial, hand-optimized, and clMPI Himeno
// implementations schedule kernels, PCIe copies, and inter-node
// communication on a two-node run. Lanes are command queues; the clMPI
// variant shows communication commands (S/R) overlapping kernels (K) with
// the host thread blocked in neither.
//
// Beyond the ASCII panels, the observability layer can export the clMPI
// panel's full event stream — command queues, MPI protocol phases, and
// link/NIC/PCIe occupancy — as Chrome trace_event JSON (open it in
// chrome://tracing or https://ui.perfetto.dev), and print the run's metrics
// registry (link utilization, eager/rendezvous counts, overlap ratios).
//
// Usage:
//
//	clmpi-trace -size S -iters 2
//	clmpi-trace -size S -iters 2 -trace out.json -metrics
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/himeno"
)

func main() {
	sizeName := flag.String("size", "S", "Himeno size: XS, S, M or L")
	iters := flag.Int("iters", 2, "iterations to trace")
	traceOut := flag.String("trace", "", "write the clMPI panel's events as Chrome trace_event JSON to this file")
	metrics := flag.Bool("metrics", false, "print each panel's metrics registry")
	flag.Parse()
	size, err := himeno.SizeByName(*sizeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clmpi-trace: %v\n", err)
		os.Exit(2)
	}
	for _, impl := range []struct {
		panel string
		impl  himeno.Impl
	}{
		{"(a) serialized", himeno.Serial},
		{"(b) hand-optimized (host-blocked overlap)", himeno.HandOpt},
		{"(c) clMPI (event-driven overlap)", himeno.CLMPI},
	} {
		trc, out, err := bench.Fig4Traced(impl.impl, size, *iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clmpi-trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Figure 4%s — Himeno %s, 2 nodes on Cichlid, %d iterations\n\n%s\n", impl.panel, size.Name, *iters, out)
		if *metrics {
			fmt.Printf("metrics %s\n%s\n", impl.panel, trc.Bus().Metrics().Format())
		}
		if *traceOut != "" && impl.impl == himeno.CLMPI {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "clmpi-trace: %v\n", err)
				os.Exit(1)
			}
			if err := trc.Bus().WriteChrome(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "clmpi-trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote Chrome trace (load in chrome://tracing or Perfetto): %s\n", *traceOut)
		}
	}
}
