// Quickstart: the paper's Figure 5 — two remote devices exchange a device
// memory buffer through clEnqueueSendBuffer / clEnqueueRecvBuffer without
// the host threads calling any MPI function explicitly.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cl"
	"repro/internal/clmpi"
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func main() {
	// A fresh two-node RICC-like cluster inside a virtual-time simulation.
	eng := sim.NewEngine()
	clus := cluster.New(eng, cluster.RICC(), 2)
	world := mpi.NewWorld(clus)
	fab := clmpi.New(world, clmpi.Options{}) // Auto strategy selection

	const size = 8 << 20 // 8 MiB payload

	// One host process per rank, exactly like an SPMD MPI program.
	world.LaunchRanks("quickstart", func(p *sim.Proc, ep *mpi.Endpoint) {
		ctx := cl.NewContext(cl.NewDevice(eng, ep.Node()), fmt.Sprintf("ctx%d", ep.Rank()))
		rt := fab.Attach(ctx, ep)
		q := ctx.NewQueue(fmt.Sprintf("q%d", ep.Rank()))
		buf := ctx.MustCreateBuffer("payload", size)

		switch ep.Rank() {
		case 0:
			// Fill the device buffer (pretend a kernel produced it).
			for i := range buf.Bytes() {
				buf.Bytes()[i] = byte(i * 31)
			}
			// The communicator device of rank 0 sends to rank 1: an
			// OpenCL command, not an MPI call (Fig. 5).
			start := p.Now()
			if _, err := rt.EnqueueSendBuffer(p, q, buf, true /*blocking*/, 0, size, 1, 0, world.Comm(), nil); err != nil {
				log.Fatalf("send: %v", err)
			}
			elapsed := p.Now().Sub(start)
			fmt.Printf("rank 0: sent %d MiB in %v (%.0f MB/s sustained)\n",
				size>>20, elapsed, float64(size)/elapsed.Seconds()/1e6)
		case 1:
			if _, err := rt.EnqueueRecvBuffer(p, q, buf, true, 0, size, 0, 0, world.Comm(), nil); err != nil {
				log.Fatalf("recv: %v", err)
			}
			ok := true
			for i, b := range buf.Bytes() {
				if b != byte(i*31) {
					ok = false
					break
				}
			}
			fmt.Printf("rank 1: received %d MiB at virtual time %v, payload intact: %v\n",
				size>>20, p.Now(), ok)
		}
	})
	if err := eng.Run(); err != nil {
		log.Fatalf("simulation: %v", err)
	}
}
