// Pipeline tuning: sweeps the pipelined(N) block size of §V-B / Fig. 8
// against message size on both systems, showing why the runtime — not the
// application — should pick N: the best block size changes with the message
// size and the system, which is the paper's performance-portability
// argument in miniature.
//
//	go run ./examples/pipelinetuning
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/clmpi"
	"repro/internal/cluster"
)

func main() {
	blocks := []int64{256 << 10, 1 << 20, 4 << 20, 16 << 20}
	sizes := []int64{1 << 20, 8 << 20, 64 << 20}

	for _, sys := range []cluster.System{cluster.Cichlid(), cluster.RICC()} {
		fmt.Printf("%s — pipelined sustained bandwidth (MB/s) by block size:\n\n", sys.Name)
		headers := []string{"msg \\ block"}
		for _, b := range blocks {
			headers = append(headers, fmt.Sprintf("%dK", b>>10))
		}
		headers = append(headers, "best")
		var rows [][]string
		for _, size := range sizes {
			row := []string{fmt.Sprintf("%dM", size>>20)}
			best, bestBW := int64(0), 0.0
			for _, b := range blocks {
				bw, err := bench.MeasureP2P(sys, clmpi.Pipelined, b, size)
				if err != nil {
					log.Fatal(err)
				}
				row = append(row, fmt.Sprintf("%.0f", bw/1e6))
				if bw > bestBW {
					bestBW, best = bw, b
				}
			}
			row = append(row, fmt.Sprintf("%dK", best>>10))
			rows = append(rows, row)
		}
		fmt.Print(bench.FormatTable(headers, rows))
		fmt.Println()
	}
	fmt.Println("Note how the best block grows with the message size and differs per system —")
	fmt.Println("the clMPI runtime hides this choice behind clEnqueueSendBuffer/clEnqueueRecvBuffer.")
}
