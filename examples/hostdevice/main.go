// Host↔device interoperation: the paper's Figure 7. Rank 0's host thread
// receives data from rank 1's *device* with a plain MPI_Irecv carrying the
// MPI_CL_MEM datatype, runs a kernel during the transfer, and gates a
// device write on both the MPI request (via clCreateEventFromMPIRequest)
// and the kernel — with no blocking anywhere on the host.
//
//	go run ./examples/hostdevice
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cl"
	"repro/internal/clmpi"
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func main() {
	const size = 16 << 20
	eng := sim.NewEngine()
	clus := cluster.New(eng, cluster.RICC(), 2)
	world := mpi.NewWorld(clus)
	fab := clmpi.New(world, clmpi.Options{})

	world.LaunchRanks("fig7", func(p *sim.Proc, ep *mpi.Endpoint) {
		ctx := cl.NewContext(cl.NewDevice(eng, ep.Node()), fmt.Sprintf("ctx%d", ep.Rank()))
		rt := fab.Attach(ctx, ep)
		q := ctx.NewQueue("cmd")

		if ep.Rank() == 0 {
			recvbuf := make([]byte, size) // host memory
			devbuf := ctx.MustCreateBuffer("dev", size)

			// Receiving data from a remote device (MPI_CL_MEM).
			req, err := ep.Irecv(p, recvbuf, 1, 0, mpi.CLMem, world.Comm())
			if err != nil {
				log.Fatal(err)
			}
			// Creating an event object from the MPI request.
			evt0 := rt.CreateEventFromMPIRequest(req)
			// Executing a kernel during the data transfer.
			k := &cl.Kernel{Name: "overlapped", Cost: func([]any) time.Duration { return 10 * time.Millisecond }}
			evt1, err := q.EnqueueNDRangeKernel(k, nil, nil)
			if err != nil {
				log.Fatal(err)
			}
			// Executing this only after both complete — no host blocking.
			wev, err := q.EnqueueWriteBuffer(p, devbuf, false, 0, size, recvbuf, cluster.Pinned,
				[]*cl.Event{evt0, evt1})
			if err != nil {
				log.Fatal(err)
			}
			if err := wev.Wait(p); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("rank 0: kernel finished %v, MPI_Irecv finished %v, gated write ran %v → %v\n",
				evt1.FinishedAt, evt0.FinishedAt, wev.StartedAt, wev.FinishedAt)
			fmt.Printf("rank 0: first device byte after chain: %#x (expect 0xA7)\n", devbuf.Bytes()[0])
		} else {
			// Rank 1: the communicator device sends its buffer to the
			// remote *host* (Fig. 7's else branch).
			buf := ctx.MustCreateBuffer("src", size)
			for i := range buf.Bytes() {
				buf.Bytes()[i] = 0xA7
			}
			if _, err := rt.EnqueueSendBuffer(p, q, buf, true, 0, size, 0, 0, world.Comm(), nil); err != nil {
				log.Fatal(err)
			}
		}
	})
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
}
