// Future work, implemented: the two §VI extensions the paper sketches.
//
//  1. Non-blocking collectives synchronized through OpenCL events: an
//     MPI_Ibcast distributes data while a kernel runs, and a dependent
//     kernel is gated on the broadcast via clCreateEventFromMPIRequest.
//
//  2. File I/O as OpenCL commands: each rank checkpoints its device buffer
//     to node-local storage with clEnqueueWriteBufferToFile — ordered by an
//     event on the producing kernel, overlapping PCIe with the disk, with
//     the host thread free — then restores and verifies it.
//
//     go run ./examples/futurework
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/cl"
	"repro/internal/clmpi"
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func main() {
	const size = 8 << 20
	eng := sim.NewEngine()
	clus := cluster.New(eng, cluster.RICC(), 3)
	world := mpi.NewWorld(clus)
	fab := clmpi.New(world, clmpi.Options{})

	world.LaunchRanks("future", func(p *sim.Proc, ep *mpi.Endpoint) {
		ctx := cl.NewContext(cl.NewDevice(eng, ep.Node()), fmt.Sprintf("ctx%d", ep.Rank()))
		rt := fab.Attach(ctx, ep)
		qc := ctx.NewQueue("compute")
		qio := ctx.NewQueue("io")

		// --- Part 1: Ibcast + event gating -------------------------------
		host := make([]byte, size)
		if ep.Rank() == 0 {
			for i := range host {
				host[i] = byte(i * 7)
			}
		}
		req := ep.Ibcast(p, host, 0, world.Comm())
		bev := rt.CreateEventFromMPIRequest(req)
		// A kernel that runs DURING the broadcast...
		busy := &cl.Kernel{Name: "overlap", Cost: func([]any) time.Duration { return 8 * time.Millisecond }}
		kev, err := qc.EnqueueNDRangeKernel(busy, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		// ...and a device upload gated on BOTH, with no host blocking.
		buf := ctx.MustCreateBuffer("state", size)
		wev, err := qc.EnqueueWriteBuffer(p, buf, false, 0, size, host, cluster.Pinned, []*cl.Event{bev, kev})
		if err != nil {
			log.Fatal(err)
		}
		if err := wev.Wait(p); err != nil {
			log.Fatal(err)
		}
		if ep.Rank() == 2 {
			fmt.Printf("rank 2: kernel done %v, Ibcast done %v, gated upload %v→%v\n",
				kev.FinishedAt, bev.FinishedAt, wev.StartedAt, wev.FinishedAt)
		}

		// --- Part 2: checkpoint to node-local disk as a command ----------
		stamp := &cl.Kernel{
			Name: "advance",
			Cost: func([]any) time.Duration { return 4 * time.Millisecond },
			Work: func([]any) error { buf.Bytes()[0] = 0x42; return nil },
		}
		sev, err := qc.EnqueueNDRangeKernel(stamp, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		ckptEv, err := rt.EnqueueWriteBufferToFile(p, qio, buf, false, 0, size, "ckpt/state.bin", 0, []*cl.Event{sev})
		if err != nil {
			log.Fatal(err)
		}
		if err := ckptEv.Wait(p); err != nil {
			log.Fatal(err)
		}
		snapshot := append([]byte(nil), buf.Bytes()...)

		// Clobber device memory, restore from the checkpoint, verify.
		for i := range buf.Bytes() {
			buf.Bytes()[i] = 0xEE
		}
		if _, err := rt.EnqueueReadBufferFromFile(p, qio, buf, true, 0, size, "ckpt/state.bin", 0, nil); err != nil {
			log.Fatal(err)
		}
		if ep.Rank() == 1 {
			fmt.Printf("rank 1: checkpoint %s (%d MiB) on %s, restored intact: %v\n",
				"ckpt/state.bin", size>>20, ep.Node().Sys.Disk.Model,
				bytes.Equal(buf.Bytes(), snapshot))
			fmt.Printf("rank 1: checkpoint command took %v (disk alone would take %v)\n",
				ckptEv.FinishedAt.Sub(ckptEv.StartedAt), ep.Node().Disk.TransferTime(size))
		}
	})
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
}
