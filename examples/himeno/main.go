// Himeno, three ways: runs the paper's three Himeno implementations
// (Fig. 2's hand-optimized code, its serialized variant, and the Fig. 6
// clMPI rewrite) on a small problem, verifies they agree with the host
// reference bit-for-bit, and prints the sustained performance of each.
//
//	go run ./examples/himeno
//	go run ./examples/himeno -size M -nodes 4 -iters 6
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/himeno"
)

func main() {
	sizeName := flag.String("size", "S", "Himeno size: XS, S, M or L")
	nodes := flag.Int("nodes", 4, "simulated cluster nodes")
	iters := flag.Int("iters", 4, "Jacobi iterations")
	system := flag.String("system", "cichlid", "a preset name or a spec file path")
	flag.Parse()

	size, err := himeno.SizeByName(*sizeName)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := cluster.Resolve(*system)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Himeno %s on %d %s nodes, %d iterations\n\n", size.Name, *nodes, sys.Name, *iters)
	refGrid, refGosa := himeno.Reference(size, *iters, himeno.ScrambledInit)

	for _, impl := range []himeno.Impl{himeno.Serial, himeno.HandOpt, himeno.CLMPI} {
		res, err := himeno.Run(himeno.Config{
			System: sys, Nodes: *nodes, Size: size, Iters: *iters,
			Impl: impl, Mode: himeno.ScrambledInit, Verify: true,
		})
		if err != nil {
			log.Fatalf("%v: %v", impl, err)
		}
		exact := true
		for i := range res.Grid {
			if res.Grid[i] != refGrid[i] {
				exact = false
				break
			}
		}
		fmt.Printf("%-15s %8.2f GFLOPS  elapsed %-12v gosa %.6e  matches reference: %v\n",
			impl.String(), res.GFLOPS, res.Elapsed, res.Gosa, exact)
		if impl == himeno.Serial {
			fmt.Printf("%-15s comp/comm ratio %.2f (comp %v, comm %v)\n",
				"", res.CompTime.Seconds()/res.CommTime.Seconds(), res.CompTime, res.CommTime)
		}
	}
	fmt.Printf("\nhost reference gosa: %.6e\n", refGosa)
}
