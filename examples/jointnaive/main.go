// Joint programming, before and after: reproduces the contrast between
// Figure 1 (naive joint MPI+OpenCL, every dependency serialized through the
// blocked host thread) and the clMPI rewrite, on the same workload — a
// kernel produces data that a neighbour needs before running its own kernel.
//
// The printed timings show where the paper's overlap argument (§III, §IV)
// comes from: the naive version pays kernel + D2H + wire + H2D + kernel in
// sequence, while the clMPI version lets each rank's second kernel overlap
// the communication commands of the next exchange.
//
//	go run ./examples/jointnaive
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cl"
	"repro/internal/clmpi"
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

const (
	bufSize    = 4 << 20
	kernelTime = 6 * time.Millisecond
	rounds     = 4
)

// produce is a stand-in compute kernel that stamps the round number.
func produce(round int) *cl.Kernel {
	return &cl.Kernel{
		Name: fmt.Sprintf("produce%d", round),
		Cost: func([]any) time.Duration { return kernelTime },
		Work: func(args []any) error {
			buf := args[0].(*cl.Buffer)
			buf.Bytes()[0] = byte(round)
			return nil
		},
	}
}

// naive is Figure 1: clEnqueueNDRangeKernel, blocking clEnqueueReadBuffer,
// MPI_Sendrecv, clEnqueueWriteBuffer — all serialized by the host thread.
func naive(eng *sim.Engine, world *mpi.World) time.Duration {
	var elapsed time.Duration
	world.LaunchRanks("naive", func(p *sim.Proc, ep *mpi.Endpoint) {
		ctx := cl.NewContext(cl.NewDevice(eng, ep.Node()), "naive")
		q := ctx.NewQueue("cmd")
		buf := ctx.MustCreateBuffer("buf", bufSize)
		peer := 1 - ep.Rank()
		host := make([]byte, bufSize)
		hostIn := make([]byte, bufSize)
		start := p.Now()
		for r := 0; r < rounds; r++ {
			// Kernel, then wait for it through the blocking read.
			if _, err := q.EnqueueNDRangeKernel(produce(r), []any{buf}, nil); err != nil {
				log.Fatal(err)
			}
			// Blocking read: the host thread stalls (third arg CL_TRUE).
			if _, err := q.EnqueueReadBuffer(p, buf, true, 0, bufSize, host, cluster.Pinned, nil); err != nil {
				log.Fatal(err)
			}
			// MPI_Sendrecv with the neighbour.
			if _, err := ep.Sendrecv(p, host, peer, 0, hostIn, peer, 0, world.Comm()); err != nil {
				log.Fatal(err)
			}
			// Blocking write of the received halo.
			if _, err := q.EnqueueWriteBuffer(p, buf, true, 0, bufSize, hostIn, cluster.Pinned, nil); err != nil {
				log.Fatal(err)
			}
		}
		if ep.Rank() == 0 {
			elapsed = p.Now().Sub(start)
		}
	})
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	return elapsed
}

// withCLMPI is the same dataflow with the extension: the transfer is an
// enqueued command gated on the kernel's event, and the next round's kernel
// is gated on the receive — the host thread never blocks inside the loop.
func withCLMPI(eng *sim.Engine, world *mpi.World, fab *clmpi.Fabric) time.Duration {
	var elapsed time.Duration
	world.LaunchRanks("clmpi", func(p *sim.Proc, ep *mpi.Endpoint) {
		ctx := cl.NewContext(cl.NewDevice(eng, ep.Node()), "clmpi")
		rt := fab.Attach(ctx, ep)
		qc := ctx.NewQueue("compute")
		// Sends and receives go on separate in-order queues: a send
		// command blocks its queue until the peer posts the matching
		// receive, so queueing the receive behind one's own send would
		// deadlock both ranks (and the simulator's deadlock detector
		// reports exactly that if you try).
		qs := ctx.NewQueue("comm-send")
		qr := ctx.NewQueue("comm-recv")
		out := ctx.MustCreateBuffer("out", bufSize)
		in := ctx.MustCreateBuffer("in", bufSize)
		peer := 1 - ep.Rank()
		start := p.Now()
		var lastRecv *cl.Event
		for r := 0; r < rounds; r++ {
			// The kernel waits (via events) for the previous receive.
			var kw []*cl.Event
			if lastRecv != nil {
				kw = append(kw, lastRecv)
			}
			kev, err := qc.EnqueueNDRangeKernel(produce(r), []any{out}, kw)
			if err != nil {
				log.Fatal(err)
			}
			// Send the kernel's output; receive the neighbour's.
			if _, err := rt.EnqueueSendBuffer(p, qs, out, false, 0, bufSize, peer, r, world.Comm(), []*cl.Event{kev}); err != nil {
				log.Fatal(err)
			}
			lastRecv, err = rt.EnqueueRecvBuffer(p, qr, in, false, 0, bufSize, peer, r, world.Comm(), nil)
			if err != nil {
				log.Fatal(err)
			}
		}
		// The host's only synchronization point (Fig. 6 style).
		for _, q := range []*cl.CommandQueue{qc, qs, qr} {
			if err := q.Finish(p); err != nil {
				log.Fatal(err)
			}
		}
		if ep.Rank() == 0 {
			elapsed = p.Now().Sub(start)
		}
	})
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	return elapsed
}

func main() {
	mk := func() (*sim.Engine, *mpi.World) {
		eng := sim.NewEngine()
		return eng, mpi.NewWorld(cluster.New(eng, cluster.RICC(), 2))
	}

	eng, world := mk()
	clmpi.New(world, clmpi.Options{})
	tNaive := naive(eng, world)

	eng2, world2 := mk()
	fab := clmpi.New(world2, clmpi.Options{})
	tCLMPI := withCLMPI(eng2, world2, fab)

	fmt.Printf("%d rounds of kernel + %d MiB neighbour exchange on RICC:\n", rounds, bufSize>>20)
	fmt.Printf("  naive joint programming (Fig. 1): %v\n", tNaive)
	fmt.Printf("  clMPI commands + events:          %v\n", tCLMPI)
	fmt.Printf("  speedup: %.2fx\n", tNaive.Seconds()/tCLMPI.Seconds())
}
